// Behavioral contracts for the two rival tree builders behind the
// MulticastStrategy seam: geo-coords (virtual-coordinate trees,
// arXiv:1009.0862) and bounded-degree (small-diameter degree-bounded
// trees, arXiv:0906.0379). Both cap fanout by node capacity — the
// contrast with the CAMs lives in *provisioning*, which stays a
// uniform-size table (capacity-blind), exercised by abl_strategy_rivals.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>

#include "strategy/bounded_degree.h"
#include "strategy/chaos.h"
#include "strategy/geo_coords.h"
#include "strategy/strategy.h"
#include "workload/population.h"

namespace cam {
namespace {

FrozenDirectory population(std::size_t n, std::uint64_t seed,
                           std::uint32_t lo = 4, std::uint32_t hi = 10) {
  workload::PopulationSpec spec;
  spec.n = n;
  spec.ring_bits = 14;
  spec.seed = seed;
  return workload::uniform_capacity_population(spec, lo, hi).freeze();
}

// Every member delivered exactly once, every parent delivered at one
// depth less, and no node adopts more children than its capacity.
void check_tree_invariants(const std::string& label,
                           const FrozenDirectory& dir,
                           const MulticastTree& tree,
                           std::uint32_t hard_bound = 0) {
  EXPECT_EQ(tree.size(), dir.size()) << label << ": incomplete coverage";
  EXPECT_EQ(tree.duplicate_deliveries(), 0u) << label;
  for (Id id : dir.ids()) {
    auto rec = tree.record_of(id);
    ASSERT_TRUE(rec.has_value()) << label << ": " << id << " unreached";
    if (id == tree.source()) {
      EXPECT_EQ(rec->depth, 0) << label;
      continue;
    }
    EXPECT_GT(rec->depth, 0) << label << ": " << id;
    auto parent = tree.record_of(rec->parent);
    ASSERT_TRUE(parent.has_value()) << label << ": orphan " << id;
    EXPECT_EQ(parent->depth, rec->depth - 1) << label << ": " << id;
  }
  for (const auto& [id, kids] : tree.children_counts()) {
    std::uint32_t cap = dir.info(id).capacity;
    if (hard_bound > 0) cap = std::min(cap, hard_bound);
    EXPECT_LE(kids, cap) << label << ": " << id
                         << " over fanout budget";
  }
}

TEST(StrategyRivals, GeoCoordsBuildsValidTrees) {
  const auto& strat = strategy::registry().make("geo-coords");
  for (std::uint64_t seed : {5ull, 6ull, 7ull}) {
    const FrozenDirectory dir = population(400, seed);
    const Id source = dir.ids()[seed % dir.size()];
    MulticastTree tree = strat.build_tree(dir, source, {});
    check_tree_invariants("geo seed " + std::to_string(seed), dir, tree);
  }
}

TEST(StrategyRivals, BoundedDegreeBuildsValidTrees) {
  const auto& strat = strategy::registry().make("bounded-degree");
  strategy::StrategyParams params;
  for (std::uint32_t bound : {2u, 4u, 8u}) {
    params.degree_bound = bound;
    const FrozenDirectory dir = population(400, 11);
    const Id source = dir.ids().front();
    MulticastTree tree = strat.build_tree(dir, source, params);
    check_tree_invariants("bound " + std::to_string(bound), dir, tree,
                          bound);
  }
}

TEST(StrategyRivals, BuildsAreDeterministic) {
  const FrozenDirectory dir = population(350, 21);
  const Id source = dir.ids()[17];
  for (const char* key : {"geo-coords", "bounded-degree"}) {
    const auto& strat = strategy::registry().make(key);
    MulticastTree a = strat.build_tree(dir, source, {});
    MulticastTree b = strat.build_tree(dir, source, {});
    ASSERT_EQ(a.size(), b.size()) << key;
    for (Id id : dir.ids()) {
      auto ra = a.record_of(id);
      auto rb = b.record_of(id);
      ASSERT_TRUE(ra && rb) << key;
      EXPECT_EQ(ra->parent, rb->parent) << key << ": " << id;
      EXPECT_EQ(ra->depth, rb->depth) << key << ": " << id;
    }
  }
}

TEST(StrategyRivals, GeoSaltReshapesTheTree) {
  const FrozenDirectory dir = population(400, 31);
  const Id source = dir.ids().front();
  const auto& strat = strategy::registry().make("geo-coords");
  strategy::StrategyParams alt;
  alt.geo_salt = 0xDEADBEEFull;
  MulticastTree base = strat.build_tree(dir, source, {});
  MulticastTree salted = strat.build_tree(dir, source, alt);
  std::size_t moved = 0;
  for (Id id : dir.ids()) {
    if (base.record_of(id)->parent != salted.record_of(id)->parent) ++moved;
  }
  EXPECT_GT(moved, dir.size() / 4)
      << "salt should relocate coordinates, not nudge a node or two";
}

TEST(StrategyRivals, DegenerateParamsThrow) {
  const FrozenDirectory dir = population(50, 41);
  strategy::StrategyParams params;
  params.degree_bound = 0;
  EXPECT_THROW(strategy::registry().make("bounded-degree")
                   .build_tree(dir, dir.ids().front(), params),
               std::invalid_argument);
  EXPECT_THROW(strategy::build_bounded_degree_tree(dir, dir.ids().front(),
                                                   params),
               std::invalid_argument);
}

TEST(StrategyRivals, CapacityOneDegeneratesToChain) {
  // With c_x = 1 everywhere both rivals must still cover the group —
  // the only legal tree shape is a chain of depth n-1.
  const FrozenDirectory dir = population(40, 51, 1, 1);
  for (const char* key : {"geo-coords", "bounded-degree"}) {
    const auto& strat = strategy::registry().make(key);
    MulticastTree tree = strat.build_tree(dir, dir.ids().front(), {});
    check_tree_invariants(key, dir, tree, 1);
    int max_depth = 0;
    for (Id id : dir.ids()) {
      max_depth = std::max(max_depth, tree.record_of(id)->depth);
    }
    EXPECT_EQ(max_depth, static_cast<int>(dir.size()) - 1) << key;
  }
}

TEST(StrategyRivals, OracleChaosRecoversForAllStrategies) {
  const FrozenDirectory dir = population(300, 61);
  const Id source = dir.ids().front();
  strategy::OracleChaosConfig cfg;
  cfg.kill_fraction = 0.3;
  cfg.seed = 9;
  for (const std::string& key : strategy::registry().names()) {
    const auto& strat = strategy::registry().make(key);
    strategy::OracleChaosReport rep =
        strategy::run_oracle_chaos(strat, dir, source, {}, cfg);
    EXPECT_EQ(rep.members, dir.size() - 1) << key;  // source is exempt
    EXPECT_EQ(rep.killed, (dir.size() - 1) * 3 / 10) << key;
    EXPECT_EQ(rep.live, rep.members - rep.killed) << key;
    EXPECT_GE(rep.delivery_ratio, 0.0) << key;
    EXPECT_LE(rep.delivery_ratio, 1.0) << key;
    EXPECT_LT(rep.delivery_ratio, 1.0)
        << key << ": killing 30% must sever someone";
    // Oracle rebuild over the survivor directory always recovers fully.
    EXPECT_EQ(rep.rebuilt, rep.live) << key;
    EXPECT_DOUBLE_EQ(rep.rebuilt_ratio, 1.0) << key;
  }
}

TEST(StrategyRivals, OracleChaosTotalLossGracefully) {
  // kill_fraction = 1.0 removes every non-source member; the report
  // must degrade to zeros rather than divide by the empty survivor set.
  const FrozenDirectory dir = population(50, 71);
  strategy::OracleChaosConfig cfg;
  cfg.kill_fraction = 1.0;
  cfg.seed = 3;
  const auto& strat = strategy::registry().make("geo-coords");
  strategy::OracleChaosReport rep =
      strategy::run_oracle_chaos(strat, dir, dir.ids().front(), {}, cfg);
  EXPECT_EQ(rep.live, 0u);
  EXPECT_EQ(rep.delivered, 0u);
  EXPECT_EQ(rep.rebuilt, 0u);
}

TEST(StrategyRivals, ProvisionedLinksAreCapacityBlind) {
  // The seam's provisioning contrast: CAMs provision c_x links; rivals
  // provision a uniform-size table regardless of capacity.
  const FrozenDirectory dir = population(100, 81, 4, 40);
  strategy::StrategyParams params;
  params.geo_neighbors = 6;
  params.degree_bound = 5;
  const auto& geo = strategy::registry().make("geo-coords");
  const auto& bd = strategy::registry().make("bounded-degree");
  const auto& cam = strategy::registry().make("camchord");
  for (Id id : dir.ids()) {
    EXPECT_EQ(geo.provisioned_links(dir, id, params), 6u);
    EXPECT_EQ(bd.provisioned_links(dir, id, params), 5u);
    EXPECT_EQ(cam.provisioned_links(dir, id, params),
              dir.info(id).capacity);
  }
}

}  // namespace
}  // namespace cam
