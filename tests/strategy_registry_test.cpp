// Registry contract for the MulticastStrategy seam: lookup by key,
// duplicate rejection, self-documenting unknown-key errors, and the
// degenerate-parameter contracts of the uniform baselines.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "strategy/strategy.h"
#include "workload/population.h"

namespace cam {
namespace {

FrozenDirectory small_world(std::uint64_t seed = 3) {
  workload::PopulationSpec spec;
  spec.n = 120;
  spec.ring_bits = 12;
  spec.seed = seed;
  return workload::uniform_capacity_population(spec, 4, 10).freeze();
}

TEST(StrategyRegistry, BuiltinsRegisteredInOrder) {
  const auto names = strategy::registry().names();
  ASSERT_EQ(names.size(), 6u);
  EXPECT_EQ(names[0], "camchord");
  EXPECT_EQ(names[1], "camkoorde");
  EXPECT_EQ(names[2], "chord");
  EXPECT_EQ(names[3], "koorde");
  EXPECT_EQ(names[4], "geo-coords");
  EXPECT_EQ(names[5], "bounded-degree");
}

TEST(StrategyRegistry, MakeAndFindAgree) {
  for (const std::string& name : strategy::registry().names()) {
    const strategy::MulticastStrategy* found =
        strategy::registry().find(name);
    ASSERT_NE(found, nullptr) << name;
    EXPECT_EQ(&strategy::registry().make(name), found);
    EXPECT_EQ(found->name(), name);
  }
  EXPECT_EQ(strategy::registry().find("nope"), nullptr);
}

TEST(StrategyRegistry, UnknownNameListsRegistry) {
  try {
    strategy::registry().make("does-not-exist");
    FAIL() << "make() should throw for unknown keys";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("does-not-exist"), std::string::npos);
    EXPECT_NE(msg.find("camchord"), std::string::npos);
    EXPECT_NE(msg.find("bounded-degree"), std::string::npos);
  }
}

class FakeStrategy final : public strategy::MulticastStrategy {
 public:
  explicit FakeStrategy(std::string name) : name_(std::move(name)) {}
  std::string_view name() const override { return name_; }
  std::string_view display_name() const override { return "Fake"; }
  bool capacity_aware() const override { return false; }
  MulticastTree build_tree(const FrozenDirectory&, Id source,
                           const strategy::StrategyParams&) const override {
    return MulticastTree(source);
  }
  std::uint32_t provisioned_links(
      const FrozenDirectory&, Id,
      const strategy::StrategyParams&) const override {
    return 1;
  }

 private:
  std::string name_;
};

TEST(StrategyRegistry, DuplicateRegistrationRejected) {
  strategy::Registry r;
  EXPECT_TRUE(r.add(std::make_unique<FakeStrategy>("fake")));
  EXPECT_FALSE(r.add(std::make_unique<FakeStrategy>("fake")));
  EXPECT_EQ(r.names().size(), 1u);
  EXPECT_FALSE(r.add(nullptr));
}

TEST(StrategyRegistry, DisplayNamesServeEveryTable) {
  const auto& reg = strategy::registry();
  EXPECT_EQ(reg.display_name("camchord"), "CAM-Chord");
  EXPECT_EQ(reg.display_name("camkoorde"), "CAM-Koorde");
  EXPECT_EQ(reg.display_name("chord"), "Chord");
  EXPECT_EQ(reg.display_name("koorde"), "Koorde");
  EXPECT_EQ(reg.display_name("geo-coords"), "Geo-Coords");
  EXPECT_EQ(reg.display_name("bounded-degree"), "Bounded-Degree");
  EXPECT_EQ(reg.joined_names(),
            "camchord, camkoorde, chord, koorde, geo-coords, "
            "bounded-degree");
}

TEST(StrategyRegistry, LookupUnsupportedThrows) {
  const FrozenDirectory dir = small_world();
  for (const char* key : {"geo-coords", "bounded-degree"}) {
    const auto& strat = strategy::registry().make(key);
    EXPECT_FALSE(strat.supports_lookup());
    EXPECT_THROW(strat.lookup(dir, dir.ids()[0], dir.ids()[1], {}),
                 std::logic_error);
  }
  for (const char* key : {"camchord", "camkoorde", "chord", "koorde"}) {
    EXPECT_TRUE(strategy::registry().make(key).supports_lookup()) << key;
  }
}

TEST(StrategyRegistry, CapabilityFlags) {
  const auto& reg = strategy::registry();
  EXPECT_TRUE(reg.make("camchord").has_protocol_mode());
  EXPECT_TRUE(reg.make("camkoorde").has_protocol_mode());
  for (const char* key : {"chord", "koorde", "geo-coords",
                          "bounded-degree"}) {
    EXPECT_FALSE(reg.make(key).has_protocol_mode()) << key;
  }
  for (const char* key : {"camchord", "camkoorde", "geo-coords",
                          "bounded-degree"}) {
    EXPECT_TRUE(reg.make(key).capacity_aware()) << key;
  }
  EXPECT_FALSE(reg.make("chord").capacity_aware());
  EXPECT_FALSE(reg.make("koorde").capacity_aware());
}

// The uniform baselines keep their legacy degenerate-parameter throws
// when invoked through the registry seam.
TEST(StrategyRegistry, BaselineDegenerateParamsThrow) {
  const FrozenDirectory dir = small_world();
  strategy::StrategyParams fanout1;
  fanout1.uniform_degree = 1;
  EXPECT_THROW(
      strategy::registry().make("chord").build_tree(dir, dir.ids()[0], fanout1),
      std::invalid_argument);
  strategy::StrategyParams degree3;
  degree3.uniform_degree = 3;
  EXPECT_THROW(strategy::registry().make("koorde").build_tree(dir, dir.ids()[0],
                                                              degree3),
               std::invalid_argument);
}

}  // namespace
}  // namespace cam
