#include "util/rng.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <vector>

namespace cam {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(99);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a.next());
  a.reseed(99);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), first[i]);
}

TEST(Rng, NextBelowStaysInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, UniformInclusiveRange) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    std::uint64_t v = rng.uniform(4, 10);
    EXPECT_GE(v, 4u);
    EXPECT_LE(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values of [4..10] hit in 2000 draws
}

TEST(Rng, UniformSingletonRange) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform(5, 5), 5u);
}

TEST(Rng, NextBelowRoughlyUniform) {
  // Chi-square over 16 buckets; crude but catches gross bias.
  Rng rng(11);
  constexpr int kBuckets = 16, kDraws = 160000;
  std::array<int, kBuckets> count{};
  for (int i = 0; i < kDraws; ++i) ++count[rng.next_below(kBuckets)];
  double expected = double{kDraws} / kBuckets;
  double chi2 = 0;
  for (int c : count) chi2 += (c - expected) * (c - expected) / expected;
  // 15 dof: p=0.001 critical value ~ 37.7.
  EXPECT_LT(chi2, 37.7);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(42);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (parent.next() == child.next());
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(42), b(42);
  Rng ca = a.split(), cb = b.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.next(), cb.next());
}

TEST(Splitmix64, KnownSequenceAdvancesState) {
  std::uint64_t s = 0;
  std::uint64_t v1 = splitmix64(s);
  std::uint64_t v2 = splitmix64(s);
  EXPECT_NE(v1, v2);
  EXPECT_EQ(s, 2 * 0x9E3779B97F4A7C15ULL);
}

}  // namespace
}  // namespace cam
