// Detection-driven fast failover (ISSUE 8): the phi-accrual-lite
// FailureDetector and its deterministic heartbeat timetable, the
// DepthFeed -> detector observer wiring, soft standby reservations in
// the CapacityLedger, standby re-hangs and graceful degradation in the
// SessionLayer, the PR 7 self-adoption regression, and the detection
// mode of the session chaos harness — including byte-identity of
// detector-OFF runs against committed PR 7 goldens.
#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "fault/session_chaos.h"
#include "overlay/directory.h"
#include "proto/depth_feed.h"
#include "proto/host_bus.h"
#include "session/failover.h"
#include "session/ledger.h"
#include "session/session.h"
#include "strategy/strategy.h"
#include "sim/latency.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "workload/population.h"

namespace cam {
namespace {

using session::CapacityLedger;
using session::DetectorParams;
using session::FailoverPolicy;
using session::FailureDetector;
using session::GroupId;
using session::HeartbeatSchedule;
using session::JoinOutcome;
using session::ReattachRecord;
using session::SessionLayer;
using session::kNoParent;

// --- FailureDetector -----------------------------------------------------

TEST(FailureDetector, FreshEdgeSeedsAnExpectedPeriodWindow) {
  FailureDetector det;  // period 2, k = 4, strikes = 2
  det.track(7, 9, 100.0);
  EXPECT_TRUE(det.tracks(7, 9));
  EXPECT_EQ(det.tracked_edges(), 1u);
  // mean = 2, dev = 0.5 -> timeout = 2 + 4 * 0.5 = 4; two strikes.
  EXPECT_DOUBLE_EQ(det.timeout_ms(7, 9), 4.0);
  EXPECT_DOUBLE_EQ(det.suspect_deadline(7, 9), 108.0);
  // Re-tracking is a no-op (statistics survive).
  det.heartbeat(7, 9, 102.0);
  const double t = det.timeout_ms(7, 9);
  det.track(7, 9, 500.0);
  EXPECT_DOUBLE_EQ(det.timeout_ms(7, 9), t);
  det.untrack(7, 9);
  EXPECT_FALSE(det.tracks(7, 9));
  EXPECT_EQ(det.tracked_edges(), 0u);
  EXPECT_DOUBLE_EQ(det.suspect_deadline(7, 9), 0.0);
}

TEST(FailureDetector, SteadyHeartbeatsTightenTheAdaptiveWindow) {
  FailureDetector det;
  det.track(1, 2, 0.0);
  const double fresh = det.timeout_ms(1, 2);
  for (int i = 1; i <= 64; ++i) {
    det.heartbeat(1, 2, 2.0 * i);  // metronome-exact period
  }
  // The EWMA converges to the true period and the deviation decays, so
  // the window shrinks toward the mean (never below the floor).
  EXPECT_LT(det.timeout_ms(1, 2), fresh);
  EXPECT_GE(det.timeout_ms(1, 2), 2.0);
  EXPECT_GE(det.timeout_ms(1, 2), det.params().floor_ms);
  // Jittery arrivals widen it again.
  FailureDetector jittery;
  jittery.track(1, 2, 0.0);
  double now = 0;
  for (int i = 1; i <= 64; ++i) {
    now += (i % 2 == 0) ? 0.5 : 3.5;  // same mean, high deviation
    jittery.heartbeat(1, 2, now);
  }
  EXPECT_GT(jittery.timeout_ms(1, 2), det.timeout_ms(1, 2));
}

TEST(FailureDetector, SweepLatchesUntilAHeartbeatAbsolves) {
  FailureDetector det;
  det.track(1, 2, 0.0);
  det.track(3, 2, 0.0);
  det.heartbeat(1, 2, 2.0);
  det.heartbeat(3, 2, 2.0);

  EXPECT_TRUE(det.sweep(4.0).empty());  // windows still open

  const SimTime d12 = det.suspect_deadline(1, 2);
  const std::vector<FailureDetector::Suspicion> s = det.sweep(1000.0);
  ASSERT_EQ(s.size(), 2u);  // sorted (watcher, peer)
  EXPECT_EQ(s[0].watcher, 1u);
  EXPECT_EQ(s[1].watcher, 3u);
  EXPECT_DOUBLE_EQ(s[0].deadline_ms, d12);
  // Latched: the same silence is not re-reported.
  EXPECT_TRUE(det.sweep(2000.0).empty());
  // A heartbeat absolves and re-arms the edge.
  det.heartbeat(1, 2, 2000.0);
  EXPECT_TRUE(det.sweep(2000.5).empty());
  const std::vector<FailureDetector::Suspicion> again = det.sweep(9000.0);
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0].watcher, 1u);
}

TEST(FailureDetector, IdenticalFeedsYieldIdenticalDeadlines) {
  FailureDetector a, b;
  const HeartbeatSchedule sched(11, 2.0);
  a.track(5, 6, 10.0);
  b.track(5, 6, 10.0);
  for (std::uint64_t i = 0; i < 32; ++i) {
    const SimTime at = 10.0 + sched.arrival_offset(5, 6, i);
    a.heartbeat(5, 6, at);
    b.heartbeat(5, 6, at);
  }
  EXPECT_DOUBLE_EQ(a.suspect_deadline(5, 6), b.suspect_deadline(5, 6));
  EXPECT_DOUBLE_EQ(a.timeout_ms(5, 6), b.timeout_ms(5, 6));
}

TEST(HeartbeatSchedule, ArrivalsAreMonotonicJitteredAndSeedStable) {
  const HeartbeatSchedule sched(42, 2.0, 0.5);
  SimTime prev = 0;
  bool jittered = false;
  for (std::uint64_t i = 0; i < 256; ++i) {
    const SimTime at = sched.arrival_offset(3, 4, i);
    EXPECT_GT(at, prev);  // jitter < period keeps the stream ordered
    // Every arrival stays within half a period of its metronome slot.
    const SimTime nominal = 2.0 * static_cast<double>(i + 1);
    EXPECT_LT(std::abs(at - nominal), 1.0);
    if (std::abs(at - nominal) > 1e-6) jittered = true;
    prev = at;
  }
  EXPECT_TRUE(jittered);
  // Pure function of (seed, edge, index): same inputs, same instant;
  // different edges and seeds de-correlate.
  const HeartbeatSchedule same(42, 2.0, 0.5);
  EXPECT_DOUBLE_EQ(sched.arrival_offset(3, 4, 17),
                   same.arrival_offset(3, 4, 17));
  EXPECT_NE(sched.arrival_offset(3, 4, 17), sched.arrival_offset(4, 3, 17));
  const HeartbeatSchedule other(43, 2.0, 0.5);
  EXPECT_NE(sched.arrival_offset(3, 4, 17), other.arrival_offset(3, 4, 17));
}

// --- DepthFeed -> detector wiring ---------------------------------------

TEST(DepthFeedObserver, DeliveredHeartbeatsFeedTheDetector) {
  // The detector hangs off the PR 7 piggyback channel: every DELIVERED
  // child -> parent heartbeat datagram is the parent's aliveness
  // evidence, stamped with the bus's delivery time (latency included).
  Simulator sim;
  const ConstantLatency latency(5.0);
  Network net(sim, latency);
  proto::HostBus bus(net);
  proto::DepthFeed feed(bus);
  const Id child = 3, parent = 8;
  feed.register_edge(child, parent);

  FailureDetector det;
  det.track(parent, child, 0.0);
  feed.set_heartbeat_observer(&det);

  const dataplane::DepthFeedHooks hooks = feed.hooks();
  ASSERT_TRUE(static_cast<bool>(hooks));
  const SimTime before = det.suspect_deadline(parent, child);
  hooks.publish(child, 1.25, sim.now());
  sim.run_until(100.0);
  EXPECT_GT(feed.heartbeats_sent(), 0u);
  // The heartbeat landed at send + latency and advanced the edge clock.
  EXPECT_GT(det.suspect_deadline(parent, child), before);
  EXPECT_TRUE(det.sweep(before).empty());

  // Detached observer: later heartbeats no longer touch the detector.
  feed.set_heartbeat_observer(nullptr);
  const SimTime after = det.suspect_deadline(parent, child);
  hooks.publish(child, 1.25, sim.now());
  sim.run_until(200.0);
  EXPECT_DOUBLE_EQ(det.suspect_deadline(parent, child), after);
}

// --- CapacityLedger soft reservations ------------------------------------

FrozenDirectory tiny_world(std::size_t n, std::uint64_t seed) {
  workload::PopulationSpec spec;
  spec.n = n;
  spec.ring_bits = 12;
  spec.seed = seed;
  return workload::uniform_capacity_population(spec, 4, 10).freeze();
}

TEST(CapacityLedger, ReservationsAreSoftAndNeverBlockAdmission) {
  const FrozenDirectory dir = tiny_world(8, 21);
  CapacityLedger ledger(dir);
  const Id x = dir.ids()[2];
  const std::uint32_t cap = ledger.capacity(x);
  ASSERT_GE(cap, 4u);

  ledger.reserve(x, 1);
  ledger.reserve(x, 1);
  ledger.reserve(x, 2);
  EXPECT_EQ(ledger.reserved(x), 3u);
  EXPECT_EQ(ledger.reserved(x, 1), 2u);
  EXPECT_EQ(ledger.reserved(x, 2), 1u);
  EXPECT_EQ(ledger.unreserved_headroom(x), cap - 3);

  // Soft: real debits ignore reservations entirely and may consume the
  // reserved headroom — admission is never refused on a standby's
  // behalf.
  for (std::uint32_t i = 0; i < cap; ++i) {
    EXPECT_TRUE(ledger.debit(x, 9));
  }
  EXPECT_EQ(ledger.available(x), 0u);
  EXPECT_EQ(ledger.reserved(x), 3u);  // claims survive, now unbacked
  EXPECT_EQ(ledger.unreserved_headroom(x), 0u);  // floored, not negative

  ledger.unreserve(x, 1);
  ledger.unreserve(x, 1);
  ledger.unreserve(x, 2);
  EXPECT_EQ(ledger.reserved(x), 0u);
  EXPECT_EQ(ledger.reserved(x, 1), 0u);
}

// --- SessionLayer: standby failover --------------------------------------

/// Hand-built four-node world on an 8-bit ring. Capacities are chosen
/// per test; bandwidth is flat (irrelevant to placement).
FrozenDirectory hand_world(const std::vector<std::pair<Id, std::uint32_t>>&
                               nodes) {
  NodeDirectory dir(RingSpace(8));
  for (const auto& [id, cap] : nodes) {
    EXPECT_TRUE(dir.add(id, NodeInfo{cap, 1000.0}));
  }
  return dir.freeze();
}

TEST(SessionFailover, ParentDeathRehangsOntoThePrecomputedStandby) {
  // S(10, cap 2) fills with A(100) and B(150); c(175) must then land
  // under A or B, and its join records the OTHER one as standby — the
  // next feasible candidate on the same join-time path.
  const FrozenDirectory dir =
      hand_world({{10, 2}, {100, 2}, {150, 2}, {175, 2}});
  SessionLayer layer(dir, strategy::registry().make("camchord"));
  layer.set_failover_policy(FailoverPolicy{true, true});

  const GroupId g = 1;
  ASSERT_TRUE(layer.create_group(g, 10));
  ASSERT_EQ(layer.join(g, 100).parent, 10u);
  ASSERT_EQ(layer.join(g, 150).parent, 10u);  // S is full now
  const session::JoinResult jc = layer.join(g, 175);
  ASSERT_EQ(jc.outcome, JoinOutcome::kJoined);
  const Id parent = jc.parent;
  ASSERT_TRUE(parent == 100u || parent == 150u) << parent;

  const Id standby = layer.standby_of(g, 175);
  ASSERT_NE(standby, kNoParent);
  ASSERT_NE(standby, parent);  // a standby is never the current parent
  // The standby holds a soft reservation against its shared uplink.
  EXPECT_GE(layer.ledger().reserved(standby, g), 1u);

  layer.fail_node(parent);
  EXPECT_FALSE(layer.group(g)->contains(parent));
  EXPECT_EQ(layer.group(g)->member(175).parent, standby);
  // The refreshed standby must never be the node that just died, even
  // though its freshly credited slots make it look attractive mid-
  // removal.
  EXPECT_NE(layer.standby_of(g, 175), parent);
  EXPECT_EQ(layer.counters().reattach_standby, 1u);
  EXPECT_EQ(layer.counters().reattach_full, 0u);
  EXPECT_EQ(layer.counters().reparented_fail, 1u);
  EXPECT_EQ(layer.counters().reparented_leave, 0u);
  EXPECT_EQ(layer.counters().dropped_members, 0u);

  const std::vector<ReattachRecord> log = layer.take_failover_log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].how, ReattachRecord::How::kStandby);
  EXPECT_EQ(log[0].child, 175u);
  EXPECT_EQ(log[0].parent, standby);
  EXPECT_EQ(log[0].lookup_hops, 0u);  // O(1): no locating lookup
  EXPECT_TRUE(layer.take_failover_log().empty());  // drained

  EXPECT_TRUE(layer.check().empty()) << layer.check()[0];
}

TEST(SessionFailover, GracefulLeavesDoNotTouchFailureCounters) {
  const FrozenDirectory dir =
      hand_world({{10, 2}, {100, 2}, {150, 2}, {175, 2}});
  SessionLayer layer(dir, strategy::registry().make("camchord"));
  layer.set_failover_policy(FailoverPolicy{true, true});
  const GroupId g = 1;
  ASSERT_TRUE(layer.create_group(g, 10));
  ASSERT_EQ(layer.join(g, 100).parent, 10u);
  ASSERT_EQ(layer.join(g, 150).parent, 10u);
  const Id parent = layer.join(g, 175).parent;
  ASSERT_TRUE(parent == 100u || parent == 150u) << parent;

  ASSERT_TRUE(layer.leave(g, parent));
  // The orphan re-hung, but as a LEAVE: the failover split stays clean.
  EXPECT_EQ(layer.counters().reparented, 1u);
  EXPECT_EQ(layer.counters().reparented_leave, 1u);
  EXPECT_EQ(layer.counters().reparented_fail, 0u);
  EXPECT_EQ(layer.counters().reattach_standby, 0u);
  EXPECT_EQ(layer.counters().reattach_full, 0u);
  EXPECT_TRUE(layer.take_failover_log().empty());
  EXPECT_TRUE(layer.check().empty());
}

// --- SessionLayer: graceful degradation ----------------------------------

TEST(SessionFailover, ZeroSlackParksThrottlesAndReadmitsDeterministically) {
  // Group 1: S(10) <- {A(100), B(150)}, A <- {C(101), D(102)} — every
  // node cap 2. Six singleton filler groups share the ledger and soak
  // up ALL remaining slack of B, C and D (a group's first join always
  // lands on the source, so each filler debits exactly the node it
  // targets; the lone filler member 60 never joins group 1, so it is
  // never a placement candidate there). When A dies its slot at S
  // credits back: orphan C (smaller id, first) takes the only feasible
  // slot by full placement; orphan D then finds zero slack anywhere in
  // group 1 — S, B, C all saturated — and parks instead of dropping.
  const FrozenDirectory dir = hand_world(
      {{10, 2}, {100, 2}, {150, 2}, {101, 2}, {102, 2}, {60, 2}});
  SessionLayer layer(dir, strategy::registry().make("camchord"));
  layer.set_failover_policy(FailoverPolicy{true, true});

  const GroupId g = 1;
  ASSERT_TRUE(layer.create_group(g, 10));
  ASSERT_EQ(layer.join(g, 100).parent, 10u);
  ASSERT_EQ(layer.join(g, 150).parent, 10u);   // S full
  ASSERT_EQ(layer.join(g, 101).parent, 100u);  // only A has slack left
  ASSERT_EQ(layer.join(g, 102).parent, 100u);  // A full
  const std::vector<Id> filler_srcs = {150, 150, 101, 101, 102, 102};
  for (std::size_t i = 0; i < filler_srcs.size(); ++i) {
    const GroupId fg = static_cast<GroupId>(2 + i);
    ASSERT_TRUE(layer.create_group(fg, filler_srcs[i]));
    ASSERT_EQ(layer.join(fg, 60).parent, filler_srcs[i]);
  }

  layer.fail_node(100);
  // C re-hung into the slot A's death freed at S (its standby, if any,
  // was saturated by the filler group — soft reservations don't hold
  // slots, so the fast path re-validates and falls through).
  EXPECT_EQ(layer.group(g)->member(101).parent, 10u);
  EXPECT_EQ(layer.counters().reattach_full, 1u);
  // D found a group with zero slack: parked, not dropped.
  EXPECT_TRUE(layer.is_parked(g, 102));
  EXPECT_FALSE(layer.group(g)->contains(102));
  EXPECT_EQ(layer.parked_count(g), 1u);
  EXPECT_EQ(layer.parked_member_count(g), 1u);
  EXPECT_EQ(layer.total_parked_members(), 1u);
  EXPECT_EQ(layer.counters().parked_subtrees, 1u);
  EXPECT_EQ(layer.counters().dropped_members, 0u);  // degraded, not lost
  // Source throttle: 3 attached (S, B, C) serve while 1 waits -> 3/4.
  EXPECT_DOUBLE_EQ(layer.throttle(g), 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(layer.throttle(2), 1.0);  // degradation is per-group

  {
    const std::vector<ReattachRecord> log = layer.take_failover_log();
    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log[0].how, ReattachRecord::How::kPlacement);
    EXPECT_EQ(log[0].child, 101u);
    EXPECT_EQ(log[0].parent, 10u);
    EXPECT_EQ(log[1].how, ReattachRecord::How::kParked);
    EXPECT_EQ(log[1].child, 102u);
    EXPECT_EQ(log[1].members, 1u);
  }
  EXPECT_TRUE(layer.check().empty()) << layer.check()[0];

  // C leaves group 1: S's slot frees and the parked subtree re-admits
  // at once — FIFO, no oracle nudge needed — and the throttle releases.
  ASSERT_TRUE(layer.leave(g, 101));
  EXPECT_FALSE(layer.is_parked(g, 102));
  EXPECT_TRUE(layer.group(g)->contains(102));
  EXPECT_EQ(layer.group(g)->member(102).parent, 10u);
  EXPECT_EQ(layer.counters().readmitted_subtrees, 1u);
  EXPECT_EQ(layer.counters().dropped_members, 0u);
  EXPECT_DOUBLE_EQ(layer.throttle(g), 1.0);
  EXPECT_EQ(layer.total_parked_members(), 0u);

  const std::vector<ReattachRecord> log = layer.take_failover_log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].how, ReattachRecord::How::kReadmitted);
  EXPECT_EQ(log[0].child, 102u);
  EXPECT_EQ(log[0].parent, 10u);
  EXPECT_TRUE(layer.check().empty()) << layer.check()[0];
}

// --- PR 7 regression: a departing node must never adopt its orphans -----

TEST(SessionFailover, DepartingNodeNeverAdoptsItsOwnOrphans) {
  // c(99)'s locating owner is N(100), so c hangs under N. When N goes,
  // N is still a tree member while its orphans are re-placed; PR 7's
  // placement could pick N itself (it had slack), leaving c attached to
  // a node that was being removed. Pin both the leave and crash paths.
  for (const bool crash : {false, true}) {
    const FrozenDirectory dir =
        hand_world({{10, 2}, {100, 2}, {200, 2}, {99, 2}});
    SessionLayer layer(dir, strategy::registry().make("camchord"));
    const GroupId g = 1;
    ASSERT_TRUE(layer.create_group(g, 10));
    ASSERT_EQ(layer.join(g, 100).parent, 10u);
    ASSERT_EQ(layer.join(g, 200).parent, 10u);  // S full before c joins
    ASSERT_EQ(layer.join(g, 99).parent, 100u) << "premise: c under N";

    if (crash) {
      layer.fail_node(100);
    } else {
      ASSERT_TRUE(layer.leave(g, 100));
    }
    ASSERT_TRUE(layer.group(g)->contains(99));
    EXPECT_FALSE(layer.group(g)->contains(100));
    EXPECT_NE(layer.group(g)->member(99).parent, 100u)
        << "orphan adopted by the departing node";
    EXPECT_TRUE(layer.check().empty()) << layer.check()[0];
  }
}

// --- Detection-mode chaos harness ----------------------------------------

std::string read_golden(const std::string& name) {
  std::ifstream in(std::string(CAM_GOLDEN_DIR) + "/" + name);
  EXPECT_TRUE(in.is_open()) << name;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(SessionFailover, DetectorOffRunsAreByteIdenticalToPR7Goldens) {
  // FailoverPolicy defaults off and cfg.detect defaults off: the whole
  // detection/standby/parking machinery must be invisible — same
  // placement walk, same counters, same report bytes as before ISSUE 8.
  const workload::WorkloadPlan plan = fault::default_session_workload();
  {
    fault::SessionChaosConfig cfg;
    cfg.system = "camchord";
    cfg.seed = 4;
    EXPECT_EQ(fault::run_session_chaos(cfg, plan).render(),
              read_golden("session_chaos_detoff_camchord_seed4.txt"));
  }
  {
    fault::SessionChaosConfig cfg;
    cfg.system = "camkoorde";
    cfg.seed = 8;
    cfg.mode = session::SchedMode::kLedgerShares;
    EXPECT_EQ(fault::run_session_chaos(cfg, plan).render(),
              read_golden("session_chaos_detoff_camkoorde_seed8.txt"));
  }
}

std::vector<fault::SessionChaosCell> detect_grid(std::size_t seeds) {
  std::vector<fault::SessionChaosCell> cells;
  const workload::WorkloadPlan plan = fault::default_session_workload();
  for (std::size_t s = 1; s <= seeds; ++s) {
    for (const char* system : {"camchord", "camkoorde"}) {
      fault::SessionChaosCell cell;
      cell.cfg.system = system;
      cell.cfg.seed = s;
      cell.cfg.detect = true;
      cell.cfg.stream_crash = true;
      cell.plan = plan;
      cells.push_back(cell);
    }
  }
  return cells;
}

TEST(SessionFailover, DetectionModeSweepHoldsEveryInvariant) {
  // 32 seeds x 2 overlays, workload crashes discovered by the detector,
  // plus a detected mid-stream crash driving the dataplane's
  // FailoverScript. Every invariant of the oracle sweep must still
  // hold: consistent ledger/trees at every sweep point, exactly-once,
  // and delivery completeness under the failover-adjusted expectation.
  const std::vector<fault::SessionChaosCell> cells = detect_grid(32);
  ASSERT_EQ(cells.size(), 64u);
  const std::vector<fault::SessionChaosReport> reports =
      fault::run_session_chaos_cells(cells, 4);

  std::size_t detected = 0, standby_used = 0, stream_crashes = 0;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const fault::SessionChaosReport& r = reports[i];
    EXPECT_TRUE(r.ok) << "cell " << i << " (" << cells[i].cfg.system
                      << " seed " << cells[i].cfg.seed << "):\n"
                      << r.render();
    EXPECT_EQ(r.dup_copies, 0u);
    EXPECT_EQ(r.copies_delivered, r.copies_expected);
    EXPECT_EQ(r.crash_victims, 3u);  // the stock regionfail burst
    EXPECT_LE(r.detected_crashes, r.crash_victims);
    detected += r.detected_crashes;
    standby_used += r.counters.reattach_standby;
    stream_crashes += r.stream_crashed ? 1 : 0;
    if (r.detected_crashes > 0) {
      // Detection is never instant: at least one adaptive strike
      // window of heartbeat silence elapses first.
      EXPECT_GT(r.detect_latency.min(), 0.0);
      EXPECT_EQ(r.detect_latency.count(), r.detected_crashes);
    }
  }
  // The sweep exercises the machinery, not just tolerates it.
  EXPECT_GT(detected, 0u);
  EXPECT_GT(standby_used, 0u);
  EXPECT_GT(stream_crashes, 0u);
}

TEST(SessionFailover, DetectionModeRendersByteIdentical) {
  fault::SessionChaosConfig cfg;
  cfg.system = "camchord";
  cfg.seed = 4;
  cfg.detect = true;
  cfg.stream_crash = true;
  const workload::WorkloadPlan plan = fault::default_session_workload();
  const std::string a = fault::run_session_chaos(cfg, plan).render();
  const std::string b = fault::run_session_chaos(cfg, plan).render();
  EXPECT_EQ(a, b);
  // The report carries the detection scoreboard.
  EXPECT_NE(a.find("failover:"), std::string::npos);
  EXPECT_NE(a.find("degraded:"), std::string::npos);
  EXPECT_NE(a.find("stream-failover:"), std::string::npos);
}

TEST(SessionFailover, MidStreamCrashRepairsTheGapExactlyOnce) {
  fault::SessionChaosConfig cfg;
  cfg.system = "camchord";
  cfg.seed = 4;
  cfg.detect = true;
  cfg.stream_crash = true;
  const fault::SessionChaosReport r =
      fault::run_session_chaos(cfg, fault::default_session_workload());
  ASSERT_TRUE(r.ok) << r.render();
  ASSERT_TRUE(r.stream_crashed);
  EXPECT_GT(r.stream_announce_ms, cfg.stream_crash_ms)
      << "detection must lag the crash";
  EXPECT_GT(r.stream_reattaches, 0u);
  EXPECT_EQ(r.dup_copies, 0u);
  EXPECT_EQ(r.copies_delivered, r.copies_expected)
      << "gap repair must close the ledger after failover";
}

}  // namespace
}  // namespace cam
