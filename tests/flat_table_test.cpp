// FlatMap/FlatSet: randomized insert/erase/rehash churn against a
// std::unordered_map oracle, plus the determinism and API guarantees the
// protocol stack relies on (insertion-order iteration, member erase_if,
// move-only values).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/flat_table.h"
#include "util/rng.h"

namespace cam {
namespace {

TEST(FlatMap, BasicInsertFindErase) {
  FlatMap<std::uint64_t, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(7), m.end());

  m[7] = 70;
  m[9] = 90;
  EXPECT_EQ(m.size(), 2u);
  ASSERT_NE(m.find(7), m.end());
  EXPECT_EQ(m.find(7)->second, 70);
  EXPECT_EQ(m.at(9), 90);
  EXPECT_TRUE(m.contains(7));
  EXPECT_EQ(m.count(9), 1u);
  EXPECT_EQ(m.count(8), 0u);

  EXPECT_EQ(m.erase(7), 1u);
  EXPECT_EQ(m.erase(7), 0u);
  EXPECT_EQ(m.find(7), m.end());
  EXPECT_EQ(m.size(), 1u);
  EXPECT_THROW(m.at(7), std::out_of_range);
}

TEST(FlatMap, TryEmplaceSemanticsMatchStd) {
  FlatMap<int, std::string> m;
  auto [it1, fresh1] = m.try_emplace(1, "one");
  EXPECT_TRUE(fresh1);
  EXPECT_EQ(it1->second, "one");
  auto [it2, fresh2] = m.try_emplace(1, "uno");
  EXPECT_FALSE(fresh2);
  EXPECT_EQ(it2->second, "one") << "try_emplace must not overwrite";
  auto [it3, fresh3] = m.emplace(2, "two");
  EXPECT_TRUE(fresh3);
  EXPECT_EQ(it3->second, "two");
}

TEST(FlatMap, MoveOnlyValues) {
  FlatMap<int, std::unique_ptr<int>> m;
  m.try_emplace(1, std::make_unique<int>(10));
  m.emplace(2, std::make_unique<int>(20));
  ASSERT_NE(m.find(1), m.end());
  EXPECT_EQ(*m.at(1), 10);
  EXPECT_EQ(m.erase(1), 1u);
  EXPECT_EQ(*m.at(2), 20);
}

TEST(FlatMap, IterationIsInsertionOrder) {
  FlatMap<std::uint64_t, int> m;
  // Keys chosen adversarially (clustered + spread); order must still be
  // pure insertion order, independent of hashing.
  const std::uint64_t keys[] = {1000, 3, 999999937, 4, 1001, 5, 1 << 20};
  int v = 0;
  for (std::uint64_t k : keys) m[k] = v++;
  std::vector<std::uint64_t> seen;
  for (const auto& [k, val] : m) seen.push_back(k);
  EXPECT_EQ(seen, std::vector<std::uint64_t>(std::begin(keys), std::end(keys)));
}

TEST(FlatMap, EraseIsSwapWithLastDeterministic) {
  FlatMap<int, int> m;
  for (int i = 0; i < 6; ++i) m[i] = i;
  m.erase(1);  // last entry (5) moves into slot 1
  std::vector<int> seen;
  for (const auto& [k, v] : m) seen.push_back(k);
  EXPECT_EQ(seen, (std::vector<int>{0, 5, 2, 3, 4}));
}

TEST(FlatMap, MemberEraseIf) {
  FlatMap<int, int> m;
  for (int i = 0; i < 100; ++i) m[i] = i;
  const std::size_t erased =
      m.erase_if([](const auto& kv) { return kv.first % 3 == 0; });
  EXPECT_EQ(erased, 34u);
  EXPECT_EQ(m.size(), 66u);
  for (const auto& [k, v] : m) {
    EXPECT_NE(k % 3, 0);
    EXPECT_EQ(k, v);
  }
}

TEST(FlatMap, ChurnAgainstUnorderedMapOracle) {
  FlatMap<std::uint64_t, std::uint64_t> m;
  std::unordered_map<std::uint64_t, std::uint64_t> oracle;
  Rng rng(42);
  // Mixed workload across several rehash boundaries: a bounded keyspace
  // so erases actually hit, with bursts of growth and shrink.
  for (int round = 0; round < 50'000; ++round) {
    const std::uint64_t key = rng.next_below(2048);
    switch (rng.next_below(10)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // insert-or-assign
        m[key] = round;
        oracle[key] = static_cast<std::uint64_t>(round);
        break;
      }
      case 4:
      case 5: {  // try_emplace (no overwrite)
        auto a = m.try_emplace(key, round);
        auto b = oracle.try_emplace(key, round);
        ASSERT_EQ(a.second, b.second);
        break;
      }
      case 6:
      case 7: {  // erase
        ASSERT_EQ(m.erase(key), oracle.erase(key));
        break;
      }
      case 8: {  // lookup
        auto it = m.find(key);
        auto jt = oracle.find(key);
        ASSERT_EQ(it == m.end(), jt == oracle.end());
        if (jt != oracle.end()) {
          ASSERT_EQ(it->second, jt->second);
        }
        break;
      }
      default: {  // occasional bulk erase_if
        if (round % 977 == 0) {
          const std::uint64_t bit = rng.next_below(2);
          auto pred_m = [&](const auto& kv) { return kv.first % 2 == bit; };
          const std::size_t a = m.erase_if(pred_m);
          const std::size_t b = std::erase_if(oracle, pred_m);
          ASSERT_EQ(a, b);
        }
        break;
      }
    }
    ASSERT_EQ(m.size(), oracle.size());
  }
  // Full-content equivalence at the end.
  for (const auto& [k, v] : m) {
    auto jt = oracle.find(k);
    ASSERT_NE(jt, oracle.end());
    ASSERT_EQ(v, jt->second);
  }
}

TEST(FlatMap, SurvivesAdversarialProbeClusters) {
  // Sequential keys hash to scattered slots, but identical low bits after
  // masking can still cluster; drive long probe chains + backshift by
  // filling, erasing every other key, and reinserting.
  FlatMap<std::uint64_t, int> m;
  constexpr int kN = 10'000;
  for (int i = 0; i < kN; ++i) m[i] = i;
  for (int i = 0; i < kN; i += 2) EXPECT_EQ(m.erase(i), 1u);
  for (int i = 1; i < kN; i += 2) {
    ASSERT_TRUE(m.contains(i));
    ASSERT_EQ(m.at(i), i);
  }
  for (int i = 0; i < kN; i += 2) m[i] = -i;
  EXPECT_EQ(m.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(m.at(i), i % 2 == 1 ? i : -i);
  }
}

TEST(FlatMap, ClearAndReuse) {
  FlatMap<int, int> m;
  for (int i = 0; i < 100; ++i) m[i] = i;
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(5), m.end());
  m[5] = 50;
  EXPECT_EQ(m.at(5), 50);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, ReserveAvoidsRehashInvalidation) {
  FlatMap<int, int> m;
  m.reserve(1000);
  for (int i = 0; i < 1000; ++i) m[i] = i;
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(m.at(i), i);
}

TEST(FlatSet, InsertEraseContains) {
  FlatSet<std::uint64_t> s;
  EXPECT_TRUE(s.insert(5).second);
  EXPECT_FALSE(s.insert(5).second);
  EXPECT_TRUE(s.contains(5));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.erase(5), 1u);
  EXPECT_EQ(s.erase(5), 0u);
  EXPECT_FALSE(s.contains(5));
  EXPECT_TRUE(s.empty());
}

TEST(FlatSet, ChurnAgainstUnorderedSetOracle) {
  FlatSet<std::uint64_t> s;
  std::unordered_set<std::uint64_t> oracle;
  Rng rng(7);
  for (int round = 0; round < 20'000; ++round) {
    const std::uint64_t key = rng.next_below(512);
    if (rng.next_below(2) == 0) {
      ASSERT_EQ(s.insert(key).second, oracle.insert(key).second);
    } else {
      ASSERT_EQ(s.erase(key), oracle.erase(key));
    }
    ASSERT_EQ(s.size(), oracle.size());
  }
  for (std::uint64_t k = 0; k < 512; ++k) {
    ASSERT_EQ(s.contains(k), oracle.count(k) == 1);
  }
}

}  // namespace
}  // namespace cam
