// Allocation-count probe for the event engine: proves the steady-state
// event loop performs ZERO heap allocations per event.
//
// A standalone binary (not part of cam_tests) because it replaces global
// operator new to count allocations — the workload is a saturated mix of
// the engine's hot shapes: self-rescheduling timers with inline-sized
// captures landing in near-future wheel slots, plus same-slot fan-out.
// After a warm-up pass (wheel slots and the active heap grow their
// capacity once, then retain it), the measured window must allocate
// nothing: InlineAction keeps every capture inline and the wheel recycles
// slot storage.
//
// Exits 0 on success, 1 with a diagnostic on any allocation per event.
#include <cstdio>
#include <cstdlib>
#include <new>

#include "sim/simulator.h"

namespace {
bool g_counting = false;
unsigned long long g_allocs = 0;
}  // namespace

void* operator new(std::size_t size) {
  if (g_counting) ++g_allocs;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using cam::SimTime;
using cam::Simulator;

// One self-rescheduling "protocol timer": a capture comfortably inside
// InlineAction's inline buffer, rescheduling at a deterministic pseudo-
// random near-future offset (the retransmit/stabilize shape).
struct Timer {
  Simulator* sim;
  std::uint64_t state;
  std::uint64_t* fired;

  void operator()() {
    ++*fired;
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    // 0.25ms .. ~64ms ahead: exercises the active slot, nearby L0 slots,
    // and the L0/L1 cascade boundary.
    const SimTime dt = 0.25 + static_cast<double>(state >> 58);
    sim->after(dt, Timer{sim, state, fired});
  }
};

}  // namespace

int main() {
  Simulator sim;
  std::uint64_t fired = 0;

  constexpr int kTimers = 64;
  // Each timer has exactly one outstanding event, so a slot starts a tick
  // with at most kTimers events; timers re-firing within the same tick
  // append a few more before the slot clears. 4x slack bounds that while
  // keeping every capacity below the engine's release threshold: with
  // this reservation the loop must be *exactly* allocation-free, not
  // just amortized-free.
  sim.reserve(4 * kTimers);
  for (int i = 0; i < kTimers; ++i) {
    sim.after(0.5 + i * 0.125,
              Timer{&sim, 0x9E3779B97F4A7C15ULL * (i + 1), &fired});
  }

  // Warm-up: let the wheel cursor, cascade, and overflow paths all run
  // before the measured window opens.
  sim.run(200'000);

  g_allocs = 0;
  g_counting = true;
  const std::uint64_t ran = sim.run(500'000);
  g_counting = false;

  if (ran != 500'000) {
    std::fprintf(stderr, "probe underran: %llu events\n",
                 static_cast<unsigned long long>(ran));
    return 1;
  }
  if (g_allocs != 0) {
    std::fprintf(stderr,
                 "steady-state event loop allocated: %llu allocations over "
                 "%llu events (%.4f/event) — engine hot path regressed\n",
                 g_allocs, static_cast<unsigned long long>(ran),
                 static_cast<double>(g_allocs) / static_cast<double>(ran));
    return 1;
  }
  std::printf("ok: %llu events, 0 allocations (fired=%llu)\n",
              static_cast<unsigned long long>(ran),
              static_cast<unsigned long long>(fired));
  return 0;
}
