// Serial == sharded identity for oracle-mode multicast, on the A3 churn
// shape: build, oracle-converge, multicast from several sources, fail a
// fraction abruptly, multicast again over the stale tables. The latency
// model is tie-free (uniform per-pair draws), so the delivered tree is a
// pure function of link latencies.
//
// Two comparison strengths:
//   * exact delivery_signature() — includes arrival times; holds between
//     sharded runs at any shard count (they all start at virtual 0) and
//     against the serial engine when its clock also starts at 0.
//   * structural (child, parent, depth) equality — time-free; holds
//     against the serial engine always (later serial multicasts start at
//     a nonzero clock, which shifts absolute times but not the tree).
#include "overlay/sharded_cast.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "camchord/net.h"
#include "camkoorde/net.h"
#include "util/rng.h"
#include "workload/churn.h"

namespace cam {
namespace {

constexpr std::uint32_t kBits = 16;
constexpr std::size_t kN = 500;
constexpr std::size_t kSources = 3;

using TreeShape = std::vector<std::tuple<Id, Id, int>>;

TreeShape shape_of(const MulticastTree& tree) {
  TreeShape v;
  v.reserve(tree.size());
  for (const auto& [node, rec] : tree.entries()) {
    v.emplace_back(node, rec.parent, rec.depth);
  }
  std::sort(v.begin(), v.end());
  return v;
}

struct Fixture {
  RingSpace ring{kBits};
  Simulator sim;
  UniformLatency lat{2.0, 9.0, 0xfee1};
  Network net{sim, lat};
  Rng rng{77};

  template <typename Net>
  void build(Net& overlay) {
    std::vector<Id> ids;
    while (ids.size() < kN) {
      Id id = rng.next_below(ring.size());
      if (std::find(ids.begin(), ids.end(), id) == ids.end())
        ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end());
    auto info = [&] {
      return NodeInfo{static_cast<std::uint32_t>(rng.uniform(4, 10)),
                      400 + rng.next_double() * 600};
    };
    overlay.bootstrap(ids[0], info());
    for (std::size_t i = 1; i < ids.size(); ++i) {
      ASSERT_TRUE(overlay.join(ids[i], info(), ids[i - 1]));
    }
    overlay.oracle_fill();
  }

  std::vector<Id> pick_sources(const std::vector<Id>& members) {
    std::vector<Id> out;
    for (std::size_t s = 0; s < kSources; ++s) {
      out.push_back(members[rng.next_below(members.size())]);
    }
    return out;
  }
};

template <typename Net>
std::vector<ShardedCastResult> sharded_round(const Net& overlay,
                                             const LatencyModel& lat,
                                             const std::vector<Id>& sources,
                                             std::uint32_t shards) {
  ShardMap map{kBits, shards};
  runtime::ShardTeam team(shards);
  std::vector<ShardedCastResult> out;
  for (Id src : sources) {
    out.push_back(sharded_multicast(overlay, lat, src, map, team));
    EXPECT_GT(out.back().events, 0u);
  }
  return out;
}

TEST(ShardedCast, CamChordMatchesSerialAcrossShardCounts) {
  Fixture fx;
  camchord::CamChordNet overlay(fx.ring, fx.net);
  fx.build(overlay);

  auto round = [&](const char* phase, bool expect_full) {
    auto members = overlay.members_sorted();
    auto sources = fx.pick_sources(members);
    const bool clock_zero = fx.sim.now() == 0;
    std::vector<TreeShape> serial_shapes;
    std::vector<std::uint64_t> serial_sigs;
    for (Id src : sources) {
      MulticastTree tree = overlay.multicast(src);
      if (expect_full) {
        EXPECT_EQ(tree.size(), overlay.size()) << phase;
      }
      serial_shapes.push_back(shape_of(tree));
      serial_sigs.push_back(tree.delivery_signature());
    }
    std::vector<std::uint64_t> first_sigs;  // per shard count
    for (std::uint32_t shards : {1u, 2u, 8u}) {
      auto results = sharded_round(overlay, fx.lat, sources, shards);
      for (std::size_t i = 0; i < sources.size(); ++i) {
        EXPECT_EQ(shape_of(results[i].tree), serial_shapes[i])
            << phase << " shards=" << shards << " source#" << i;
        if (i == 0) first_sigs.push_back(results[i].tree.delivery_signature());
      }
      // The serial engine's clock started at 0 only for the very first
      // multicast of the run; there absolute times (hence exact
      // signatures) must agree too.
      if (clock_zero) {
        EXPECT_EQ(first_sigs.back(), serial_sigs[0])
            << phase << " shards=" << shards;
      }
    }
    // Sharded runs always start at virtual 0: exact across shard counts.
    for (std::size_t i = 1; i < first_sigs.size(); ++i) {
      EXPECT_EQ(first_sigs[i], first_sigs[0]) << phase;
    }
  };

  round("converged", true);
  workload::fail_random_fraction(overlay, 0.15, fx.rng);
  round("post-churn", false);
}

TEST(ShardedCast, CamKoordeShardCountInvariant) {
  Fixture fx;
  camkoorde::CamKoordeNet overlay(fx.ring, fx.net);
  fx.build(overlay);

  auto round = [&](const char* phase, bool expect_full) {
    auto members = overlay.members_sorted();
    auto sources = fx.pick_sources(members);
    // The koorde sharded driver swaps sender-side suppression for
    // receiver-side dedupe (see sharded_cast.h), so the reference is
    // the one-shard sharded run, not the serial engine.
    auto reference = sharded_round(overlay, fx.lat, sources, 1u);
    if (expect_full) {
      EXPECT_EQ(reference[0].tree.size(), overlay.size()) << phase;
    }
    for (std::uint32_t shards : {2u, 8u}) {
      auto results = sharded_round(overlay, fx.lat, sources, shards);
      for (std::size_t i = 0; i < sources.size(); ++i) {
        EXPECT_EQ(results[i].tree.delivery_signature(),
                  reference[i].tree.delivery_signature())
            << phase << " shards=" << shards << " source#" << i;
        EXPECT_EQ(results[i].data_messages, reference[i].data_messages)
            << phase << " shards=" << shards << " source#" << i;
      }
    }
  };

  round("converged", true);
  workload::fail_random_fraction(overlay, 0.15, fx.rng);
  round("post-churn", false);
}

// Message-count parity: the sharded chord driver must send exactly the
// serial count (one payload per resolved child), shard-count invariant.
TEST(ShardedCast, CamChordMessageCountMatchesSerial) {
  Fixture fx;
  camchord::CamChordNet overlay(fx.ring, fx.net);
  fx.build(overlay);
  Id src = overlay.members_sorted().front();

  auto before = fx.net.stats();
  (void)overlay.multicast(src);
  auto after = fx.net.stats();
  const std::uint64_t serial_msgs =
      after.messages[static_cast<int>(MsgClass::kData)] -
      before.messages[static_cast<int>(MsgClass::kData)];

  for (std::uint32_t shards : {1u, 4u}) {
    ShardMap map{kBits, shards};
    runtime::ShardTeam team(shards);
    ShardedCastResult r = sharded_multicast(overlay, fx.lat, src, map, team);
    EXPECT_EQ(r.data_messages, serial_msgs) << "shards=" << shards;
  }
}

}  // namespace
}  // namespace cam
