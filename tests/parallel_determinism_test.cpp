// The acceptance gate of the parallel sweep runtime: running any cell
// grid with jobs > 1 must produce output BYTE-IDENTICAL to the serial
// jobs = 1 run — same AveragedRun fields (including the FP accumulation
// order of every mean), same ChaosReport::render() text, same bench
// tables. Scheduling order is the only thing allowed to vary.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "experiments/runner.h"
#include "experiments/table.h"
#include "fault/chaos_run.h"
#include "runtime/cells.h"
#include "runtime/sweep_pool.h"
#include "strategy/strategy.h"
#include "workload/population.h"

namespace cam {
namespace {

using exp::AveragedRun;

void expect_identical(const AveragedRun& a, const AveragedRun& b,
                      const std::string& label) {
  // Exact equality on doubles is the point: the ordered reduction must
  // replay the serial accumulation order bit for bit.
  EXPECT_EQ(a.expected, b.expected) << label;
  EXPECT_EQ(a.reached, b.reached) << label;
  EXPECT_EQ(a.duplicates, b.duplicates) << label;
  EXPECT_EQ(a.avg_children, b.avg_children) << label;
  EXPECT_EQ(a.avg_degree, b.avg_degree) << label;
  EXPECT_EQ(a.throughput_kbps, b.throughput_kbps) << label;
  EXPECT_EQ(a.provisioned_kbps, b.provisioned_kbps) << label;
  EXPECT_EQ(a.avg_path, b.avg_path) << label;
  EXPECT_EQ(a.max_depth, b.max_depth) << label;
  EXPECT_EQ(a.depth_histogram, b.depth_histogram) << label;
}

std::vector<runtime::CellSpec> sample_grid() {
  std::vector<runtime::CellSpec> cells;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    for (const char* key : {"camchord", "camkoorde", "chord"}) {
      runtime::CellSpec cell;
      cell.strategy = key;
      workload::PopulationSpec spec;
      spec.n = 300;
      spec.ring_bits = 12;
      spec.seed = seed;
      cell.population = runtime::PopulationRecipe::uniform(spec, 4, 10);
      cell.sources = 2;
      cell.seed = seed;
      cell.params.uniform_degree = 8;
      cells.push_back(cell);
    }
  }
  return cells;
}

TEST(ParallelDeterminism, RunCellsMatchesSerialForAnyJobs) {
  const std::vector<runtime::CellSpec> cells = sample_grid();
  std::vector<AveragedRun> serial = runtime::run_cells(cells, {.jobs = 1});
  ASSERT_EQ(serial.size(), cells.size());

  for (std::size_t jobs : {std::size_t{4}, runtime::effective_jobs(0)}) {
    std::vector<AveragedRun> parallel =
        runtime::run_cells(cells, {.jobs = jobs});
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      expect_identical(serial[i], parallel[i],
                       "cell " + std::to_string(i) + " jobs " +
                           std::to_string(jobs));
    }
  }
}

TEST(ParallelDeterminism, RunSourcesInternalJobsMatchesSerial) {
  // run_sources itself parallelizes over sources: the per-source trees
  // are pre-seeded serially, so the reduction must match exactly.
  workload::PopulationSpec spec;
  spec.n = 400;
  spec.ring_bits = 12;
  spec.seed = 11;
  FrozenDirectory dir =
      workload::uniform_capacity_population(spec, 4, 10).freeze();
  AveragedRun serial =
      exp::run_sources(strategy::registry().make("camchord"), dir, 6, 11, {},
                       /*jobs=*/1);
  for (std::size_t jobs : {std::size_t{2}, std::size_t{6}}) {
    AveragedRun parallel =
        exp::run_sources(strategy::registry().make("camchord"), dir, 6, 11,
                         {}, jobs);
    expect_identical(serial, parallel, "jobs " + std::to_string(jobs));
  }
}

TEST(ParallelDeterminism, SharedFrozenDirectoryAcrossConcurrentCells) {
  // Many cells reading ONE prebuilt FrozenDirectory concurrently — the
  // documented safe-sharing case. Same seed => same result, and every
  // jobs level agrees.
  workload::PopulationSpec spec;
  spec.n = 350;
  spec.ring_bits = 12;
  spec.seed = 21;
  FrozenDirectory dir =
      workload::uniform_capacity_population(spec, 4, 10).freeze();
  std::vector<runtime::CellSpec> cells;
  for (int i = 0; i < 8; ++i) {
    runtime::CellSpec cell;
    cell.strategy = i % 2 == 0 ? "camchord" : "camkoorde";
    cell.prebuilt = &dir;
    cell.sources = 2;
    cell.seed = 5;
    cells.push_back(cell);
  }
  std::vector<AveragedRun> serial = runtime::run_cells(cells, {.jobs = 1});
  std::vector<AveragedRun> parallel = runtime::run_cells(cells, {.jobs = 8});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    expect_identical(serial[i], parallel[i], "cell " + std::to_string(i));
    // Cells 0/2/4/6 are identical specs; they must agree exactly too.
    if (i >= 2) {
      expect_identical(parallel[i - 2], parallel[i],
                       "repeat cell " + std::to_string(i));
    }
  }
}

TEST(ParallelDeterminism, ChaosReportsRenderIdenticallyForAnyJobs) {
  // Full chaos worlds (async overlay + fault injector + telemetry) per
  // cell. render() includes the fault journal, violation list, and the
  // deterministic counter CSV — byte-comparing it is the strongest
  // cheap check that NOTHING in the protocol stack leaked across cells.
  fault::FaultPlan plan;
  plan.drop(0, 0.05).crash(1'000, 2).clear(6'000);
  std::vector<fault::ChaosCell> cells;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    fault::ChaosCell cell;
    cell.cfg.system = seed % 2 == 0 ? "camkoorde" : "camchord";
    cell.cfg.n = 12;
    cell.cfg.bits = 10;
    cell.cfg.seed = seed;
    cell.cfg.mid_multicasts = 1;
    cell.plan = plan;
    cells.push_back(cell);
  }

  std::vector<fault::ChaosReport> serial = fault::run_chaos_cells(cells, 1);
  ASSERT_EQ(serial.size(), cells.size());
  std::vector<fault::ChaosReport> parallel =
      fault::run_chaos_cells(cells, 4);
  ASSERT_EQ(parallel.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(serial[i].ok, parallel[i].ok) << "cell " << i;
    EXPECT_EQ(serial[i].render(), parallel[i].render()) << "cell " << i;
  }
}

TEST(ParallelDeterminism, TableOutputIdenticalAcrossJobs) {
  // End-to-end shape of a bench: cells -> rows -> rendered table. The
  // printed bytes must not depend on jobs.
  auto render = [](std::size_t jobs) {
    std::vector<runtime::CellSpec> cells;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      runtime::CellSpec cell;
      workload::PopulationSpec spec;
      spec.n = 250;
      spec.ring_bits = 12;
      spec.seed = seed;
      cell.population = runtime::PopulationRecipe::bandwidth_derived(
          spec, 100, 4);
      cell.sources = 2;
      cell.seed = seed;
      cells.push_back(cell);
    }
    std::vector<AveragedRun> runs = runtime::run_cells(cells, {.jobs = jobs});
    exp::Table t({"seed", "kbps", "path"});
    for (std::size_t i = 0; i < runs.size(); ++i) {
      t.add_row({std::to_string(cells[i].seed),
                 exp::fmt(runs[i].throughput_kbps, 1),
                 exp::fmt(runs[i].avg_path)});
    }
    std::ostringstream os;
    t.print(os);
    return os.str();
  };
  const std::string serial = render(1);
  EXPECT_EQ(render(4), serial);
  EXPECT_EQ(render(runtime::effective_jobs(0)), serial);
}

}  // namespace
}  // namespace cam
