#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "camchord/oracle.h"
#include "dataplane/bin_queue.h"
#include "dataplane/forwarder.h"
#include "dataplane/packet_pool.h"
#include "multicast/metrics.h"
#include "runtime/cells.h"
#include "stream/streaming.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "test_util.h"

namespace cam {
namespace {

using dataplane::BackpressureForwarder;
using dataplane::BinQueue;
using dataplane::ForwarderConfig;
using dataplane::ForwardStats;
using dataplane::kNullPacket;
using dataplane::PacketPool;
using dataplane::PacketRef;
using dataplane::QueuedCopy;
using dataplane::TrafficSpec;
using test::capacity_fn;
using test::make_population;

// ---------------------------------------------------------------- pool --

TEST(PacketPoolTest, AllocInitializesAndTracksUse) {
  PacketPool pool;
  EXPECT_EQ(pool.capacity(), 0u);
  PacketRef a = pool.alloc(7, 3, 1250, 12.5);
  ASSERT_NE(a, kNullPacket);
  const dataplane::Packet& p = pool.get(a);
  EXPECT_EQ(p.stream, 7u);
  EXPECT_EQ(p.seq, 3u);
  EXPECT_EQ(p.bytes, 1250u);
  EXPECT_DOUBLE_EQ(p.emitted_ms, 12.5);
  EXPECT_EQ(p.refs, 1u);
  EXPECT_EQ(pool.in_use(), 1u);
  EXPECT_EQ(pool.capacity(), PacketPool::kSlabPackets);
  pool.release(a);
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(pool.recycled(), 1u);
}

TEST(PacketPoolTest, RefCountKeepsPacketLive) {
  PacketPool pool;
  PacketRef a = pool.alloc(0, 0, 100, 0);
  pool.add_ref(a);
  pool.release(a);
  EXPECT_EQ(pool.in_use(), 1u);  // one ref still out
  EXPECT_EQ(pool.recycled(), 0u);
  pool.release(a);
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(pool.recycled(), 1u);
}

TEST(PacketPoolTest, ReleaseRecyclesHandle) {
  PacketPool pool;
  PacketRef a = pool.alloc(0, 0, 100, 0);
  pool.release(a);
  PacketRef b = pool.alloc(0, 1, 100, 0);
  EXPECT_EQ(b, a);  // LIFO free list hands the slot straight back
  EXPECT_EQ(pool.total_allocs(), 2u);
  EXPECT_EQ(pool.slab_count(), 1u);
  pool.release(b);
}

TEST(PacketPoolTest, ReservePresizesSlabs) {
  PacketPool pool;
  pool.reserve(3 * PacketPool::kSlabPackets - 5);
  EXPECT_EQ(pool.slab_count(), 3u);
  EXPECT_GE(pool.capacity(), 3 * PacketPool::kSlabPackets - 5);
  // Churn below the reserved bound: no further slab growth.
  std::vector<PacketRef> live;
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 2000; ++i) live.push_back(pool.alloc(0, i, 64, 0));
    EXPECT_EQ(pool.slab_count(), 3u);
    for (PacketRef r : live) pool.release(r);
    live.clear();
  }
  EXPECT_EQ(pool.peak_in_use(), 2000u);
}

TEST(PacketPoolTest, GrowsWhenExhausted) {
  PacketPool pool;
  std::vector<PacketRef> live;
  for (std::size_t i = 0; i < PacketPool::kSlabPackets + 1; ++i) {
    live.push_back(pool.alloc(0, 0, 1, 0));
  }
  EXPECT_EQ(pool.slab_count(), 2u);
  for (PacketRef r : live) pool.release(r);
  EXPECT_EQ(pool.in_use(), 0u);
}

// ---------------------------------------------------------- bin queues --

QueuedCopy copy_of(PacketRef pkt, std::uint32_t dest, std::uint64_t order) {
  QueuedCopy c;
  c.pkt = pkt;
  c.dest = dest;
  c.order = order;
  return c;
}

TEST(BinQueueTest, FifoViewFollowsGlobalOrderAcrossBins) {
  BinQueue q;
  q.push(/*stream=*/1, copy_of(10, 0, 5), 100);
  q.push(/*stream=*/2, copy_of(11, 1, 3), 100);
  q.push(/*stream=*/1, copy_of(12, 2, 7), 100);
  ASSERT_NE(q.peek_fifo(), nullptr);
  EXPECT_EQ(q.peek_fifo()->order, 3u);  // lowest stamp, regardless of bin
  EXPECT_EQ(q.pop_fifo(100).pkt, 11u);
  EXPECT_EQ(q.pop_fifo(100).pkt, 10u);
  EXPECT_EQ(q.pop_fifo(100).pkt, 12u);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.depth_bytes(), 0u);
}

TEST(BinQueueTest, PressureViewPicksDeepestBinDeterministically) {
  BinQueue q;
  q.push(1, copy_of(20, 0, 1), 100);
  q.push(2, copy_of(21, 0, 2), 100);
  q.push(2, copy_of(22, 0, 3), 100);  // stream 2: 200 bytes, deepest
  EXPECT_EQ(q.depth_bytes(1), 100u);
  EXPECT_EQ(q.depth_bytes(2), 200u);
  ASSERT_NE(q.peek_pressure(), nullptr);
  EXPECT_EQ(q.peek_pressure()->pkt, 21u);  // head of the deepest bin
  EXPECT_EQ(q.pop_pressure(100).pkt, 21u);
  // Now both bins hold 100 bytes: tie breaks to the lower head stamp,
  // the same answer every time — pressure service is deterministic.
  EXPECT_EQ(q.peek_pressure()->pkt, 20u);
  EXPECT_EQ(q.pop_pressure(100).pkt, 20u);
  EXPECT_EQ(q.pop_pressure(100).pkt, 22u);
  EXPECT_TRUE(q.empty());
}

TEST(BinQueueTest, ReserveKeepsAccountingIntact) {
  BinQueue q;
  q.reserve(/*streams=*/2, /*copies_per_bin=*/16);
  for (std::uint64_t i = 0; i < 16; ++i) {
    q.push(i % 2, copy_of(static_cast<PacketRef>(i), 0, i), 50);
  }
  EXPECT_EQ(q.size(), 16u);
  EXPECT_EQ(q.depth_bytes(), 16u * 50);
  for (std::uint64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(q.pop_fifo(50).order, i);
  }
  EXPECT_TRUE(q.empty());
}

// ------------------------------------------------------------ forwarder --

/// source -> hub -> {4 leaves}: the hotspot shape. The hub serializes
/// four copies of every packet through its (weak) uplink.
MulticastTree hub_tree() {
  MulticastTree tree(1);
  tree.record(1, 2, 1);
  for (Id leaf : {3, 4, 5, 6}) tree.record(2, leaf, 2);
  return tree;
}

ForwardStats run_tree(const MulticastTree& tree, const UplinkFn& uplink,
                      double latency_ms, ForwarderConfig cfg,
                      TrafficSpec traffic, telemetry::Sink sink = {}) {
  ConstantLatency lat(latency_ms);
  BackpressureForwarder f(tree, lat, cfg, sink);
  f.resolve_uplinks(uplink);
  return f.run(traffic);
}

// FIFO mode reproduces the legacy plane's exact arithmetic: 100 ms
// transmission + 30 ms propagation = 130.0 ms first packet, to the bit.
TEST(DataplaneForwarder, FifoModeMatchesLegacyNumbersExactly) {
  MulticastTree tree(1);
  tree.record(1, 2, 1);
  ForwarderConfig cfg;
  cfg.backpressure = false;
  TrafficSpec traffic;
  traffic.num_packets = 32;
  ForwardStats s =
      run_tree(tree, [](Id) { return 100.0; }, 30.0, cfg, traffic);
  EXPECT_EQ(s.session.receivers, 1u);
  EXPECT_DOUBLE_EQ(s.session.max_first_packet_ms, 130.0);
  // 32 back-to-back packets of 100 ms each: last leaves at 3200 ms.
  EXPECT_DOUBLE_EQ(s.session.completion_ms, 3230.0);
  EXPECT_NEAR(s.session.session_rate_kbps, 100.0, 1e-9);
  EXPECT_EQ(s.copies_sent, 32u);
  EXPECT_EQ(s.copies_delivered, 32u);
  EXPECT_EQ(s.delegated_copies, 0u);
}

// The public stream API is a view of the data plane: identical structs.
TEST(DataplaneForwarder, StreamOverTreeIsTheFifoForwarder) {
  MulticastTree tree = hub_tree();
  auto uplink = [](Id x) { return x == 2 ? 80.0 : 500.0; };
  ConstantLatency lat(10.0);
  StreamConfig cfg;
  cfg.num_packets = 24;
  StreamResult via_api = stream_over_tree(tree, uplink, lat, cfg);

  ForwarderConfig fwd;
  fwd.backpressure = false;
  ForwardStats direct = run_tree(tree, uplink, 10.0, fwd, cfg);
  EXPECT_EQ(via_api.session_rate_kbps, direct.session.session_rate_kbps);
  EXPECT_EQ(via_api.completion_ms, direct.session.completion_ms);
  EXPECT_EQ(via_api.mean_rate_kbps, direct.session.mean_rate_kbps);
  EXPECT_EQ(via_api.max_first_packet_ms, direct.session.max_first_packet_ms);
  EXPECT_EQ(via_api.receivers, direct.session.receivers);
}

// Uncongested, backpressure IS the FIFO schedule — every measured field
// equal to the last bit, zero deviations, zero delegations.
TEST(DataplaneForwarder, BackpressureEqualsFifoWhenUncongested) {
  NodeDirectory dir = make_population(300, 16, 4, 10, 11);
  FrozenDirectory f = dir.freeze();
  MulticastTree tree =
      camchord::multicast(f.ring(), f, capacity_fn(f), f.ids()[0]);
  auto bw = [&f](Id x) { return f.info(x).bandwidth_kbps; };
  double analytic = tree_throughput_kbps(tree, bw);
  ASSERT_GT(analytic, 0);

  TrafficSpec traffic;
  traffic.num_packets = 48;
  traffic.source_rate_kbps = analytic * 0.5;  // comfortably sustainable

  ForwarderConfig fifo;
  fifo.backpressure = false;
  ForwarderConfig bp;
  bp.backpressure = true;
  ForwardStats a = run_tree(tree, bw, 10.0, fifo, traffic);
  ForwardStats b = run_tree(tree, bw, 10.0, bp, traffic);

  EXPECT_EQ(a.session.session_rate_kbps, b.session.session_rate_kbps);
  EXPECT_EQ(a.session.completion_ms, b.session.completion_ms);
  EXPECT_EQ(a.session.mean_rate_kbps, b.session.mean_rate_kbps);
  EXPECT_EQ(a.session.max_first_packet_ms, b.session.max_first_packet_ms);
  EXPECT_EQ(a.copies_sent, b.copies_sent);
  EXPECT_EQ(a.copies_delivered, b.copies_delivered);
  EXPECT_EQ(b.delegated_copies, 0u);
  EXPECT_EQ(a.copies_delivered, a.copies_expected);
}

// The tentpole behavior: with the hub uplink far below the offered
// load, FIFO collapses to hub_bw / children while backpressure sheds
// duty to leaves that already hold each packet and sustains a
// multiplicatively higher session rate.
TEST(DataplaneForwarder, DelegationBeatsFifoAtHotspot) {
  MulticastTree tree = hub_tree();
  auto uplink = [](Id x) { return x == 2 ? 40.0 : 1000.0; };
  TrafficSpec traffic;
  traffic.num_packets = 48;
  traffic.source_rate_kbps = 80.0;  // hub alone could carry 40/4 = 10

  ForwarderConfig fifo;
  fifo.backpressure = false;
  ForwarderConfig bp;
  bp.backpressure = true;
  ForwardStats f = run_tree(tree, uplink, 10.0, fifo, traffic);
  ForwardStats b = run_tree(tree, uplink, 10.0, bp, traffic);

  EXPECT_NEAR(f.session.session_rate_kbps, 10.0, 1.0);
  EXPECT_GT(b.delegated_copies, 0u);
  // The hub still transmits the first copies itself (a helper must hold
  // a packet before it can relay it), so the steady state here is two
  // transmissions + two delegations per packet: ~2x FIFO exactly.
  EXPECT_GT(b.session.session_rate_kbps, 1.8 * f.session.session_rate_kbps);
  // Delegation reroutes copies, it never loses them.
  EXPECT_EQ(b.copies_delivered, b.copies_expected);
  EXPECT_LT(b.session.completion_ms, f.session.completion_ms);
}

// Latency-constrained mode: copies stuck behind a congested uplink past
// the deadline are zombied (dropped + counted), not queued forever.
TEST(DataplaneForwarder, DeadlineExpiresZombies) {
  MulticastTree tree(1);
  tree.record(1, 2, 1);
  tree.record(2, 3, 2);
  auto uplink = [](Id x) { return x == 2 ? 20.0 : 1000.0; };
  TrafficSpec traffic;
  traffic.num_packets = 32;
  traffic.source_rate_kbps = 100.0;  // node 2 drains at 20: queue grows

  telemetry::Registry reg;
  telemetry::Tracer tracer;
  telemetry::Sink sink{&reg, &tracer};

  ForwarderConfig cfg;
  cfg.backpressure = true;
  cfg.deadline_ms = 1500.0;
  ForwardStats s = run_tree(tree, uplink, 10.0, cfg, traffic, sink);

  EXPECT_GT(s.zombie_copies, 0u);
  EXPECT_EQ(s.zombie_bytes, s.zombie_copies * traffic.packet_bytes);
  EXPECT_LT(s.copies_delivered, s.copies_expected);
  EXPECT_EQ(s.copies_delivered + s.zombie_copies, s.copies_expected);
  EXPECT_EQ(reg.counter("dataplane.zombie.copies").value(), s.zombie_copies);
  bool saw_zombie_event = false;
  for (const auto& e : tracer.events()) {
    if (e.type == telemetry::EventType::kPacketZombie) saw_zombie_event = true;
  }
  EXPECT_TRUE(saw_zombie_event);
}

// Admission control: congestion flags climb the tree and gate the
// source. Emission pauses at least once, resumes, and every packet is
// still delivered (throttled, not dropped).
TEST(DataplaneForwarder, AdmissionThrottlesSource) {
  MulticastTree tree(1);
  tree.record(1, 2, 1);
  tree.record(2, 3, 2);
  auto uplink = [](Id x) { return x == 2 ? 50.0 : 1000.0; };
  TrafficSpec traffic;
  traffic.num_packets = 24;
  traffic.source_rate_kbps = 200.0;  // 4x what node 2 can relay

  telemetry::Registry reg;
  telemetry::Sink sink{&reg, nullptr};

  ForwarderConfig cfg;
  cfg.backpressure = true;
  cfg.admission_high_ms = 400.0;
  cfg.admission_low_ms = 100.0;
  ForwardStats s = run_tree(tree, uplink, 10.0, cfg, traffic, sink);

  EXPECT_GT(s.admission_pauses, 0u);
  EXPECT_GT(s.admission_paused_ms, 0.0);
  EXPECT_EQ(s.packets_emitted, traffic.num_packets);
  EXPECT_EQ(s.copies_delivered, s.copies_expected);
  EXPECT_EQ(reg.counter("dataplane.admission.pauses").value(),
            s.admission_pauses);
  // Throttled to roughly the bottleneck's drain rate, not the offered 200.
  EXPECT_LT(s.session.session_rate_kbps, 80.0);
}

TEST(DataplaneForwarder, PoolStaysWithinReserveAndQuiesces) {
  MulticastTree tree = hub_tree();
  ForwarderConfig cfg;
  TrafficSpec traffic;
  traffic.num_packets = 64;
  ForwardStats s =
      run_tree(tree, [](Id) { return 200.0; }, 5.0, cfg, traffic);
  EXPECT_EQ(s.pool_allocs, traffic.num_packets);
  EXPECT_EQ(s.pool_recycled, traffic.num_packets);  // all returned
  EXPECT_LE(s.pool_peak_in_use, 2 * tree.size() + 64);
}

// ---------------------------------------------------------- sweep cells --

bool same_result(const runtime::StreamCellResult& a,
                 const runtime::StreamCellResult& b) {
  return a.stats.session.session_rate_kbps ==
             b.stats.session.session_rate_kbps &&
         a.stats.session.completion_ms == b.stats.session.completion_ms &&
         a.stats.session.mean_rate_kbps == b.stats.session.mean_rate_kbps &&
         a.stats.session.max_first_packet_ms ==
             b.stats.session.max_first_packet_ms &&
         a.stats.session.receivers == b.stats.session.receivers &&
         a.stats.copies_sent == b.stats.copies_sent &&
         a.stats.copies_delivered == b.stats.copies_delivered &&
         a.stats.delegated_copies == b.stats.delegated_copies &&
         a.stats.zombie_copies == b.stats.zombie_copies &&
         a.stats.admission_pauses == b.stats.admission_pauses &&
         a.analytic_kbps == b.analytic_kbps && a.hotspot == b.hotspot &&
         a.hotspot_children == b.hotspot_children;
}

// The abl_backpressure grid: serial and parallel runs byte-identical.
TEST(DataplaneSweep, StreamCellsDeterministicAcrossJobs) {
  workload::PopulationSpec spec;
  spec.n = 200;
  spec.ring_bits = 16;
  spec.seed = 5;
  FrozenDirectory dir =
      workload::bandwidth_derived_population(spec, 100.0, 4).freeze();

  dataplane::TrafficSpec traffic;
  traffic.num_packets = 32;
  traffic.source_rate_kbps = 50.0;

  std::vector<runtime::StreamCellSpec> cells;
  for (const char* key : {"camchord", "camkoorde"}) {
    for (double h : {1.0, 0.25}) {
      for (bool bp : {false, true}) {
        runtime::StreamCellSpec cell;
        cell.strategy = key;
        cell.prebuilt = &dir;
        cell.seed = 5;
        cell.traffic = traffic;
        cell.fwd.backpressure = bp;
        cell.hotspot_factor = h;
        cells.push_back(cell);
      }
    }
  }
  auto serial = runtime::run_cells(cells, runtime::RunOptions{1});
  auto parallel = runtime::run_cells(cells, runtime::RunOptions{4});
  ASSERT_EQ(serial.size(), cells.size());
  ASSERT_EQ(parallel.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_TRUE(same_result(serial[i], parallel[i])) << "cell " << i;
  }
  // The grid exercises the tentpole claim at this scale too: for each
  // system, the hotspot backpressure cell beats the hotspot FIFO cell.
  for (std::size_t base : {std::size_t{0}, std::size_t{4}}) {
    const auto& fifo_hot = serial[base + 2].stats.session;
    const auto& bp_hot = serial[base + 3].stats.session;
    EXPECT_GT(bp_hot.session_rate_kbps, fifo_hot.session_rate_kbps)
        << "system block at " << base;
  }
}

}  // namespace
}  // namespace cam
