// Allocation-count probe for the data plane: proves the steady-state
// packet cycle — pool alloc, bin enqueue per child, pressure/FIFO
// dequeue, release — performs ZERO heap allocations per packet.
//
// A standalone binary (not part of cam_tests) because it replaces global
// operator new to count allocations. The workload is the forwarder's hot
// shape without the event engine: a reserved PacketPool feeding a fan of
// reserved BinQueues across several streams, with queues kept partially
// full so rings wrap and the FlatMap stream index is exercised on every
// push. After reserve(), the measured 500k-packet churn must allocate
// nothing — exactly allocation-free, not amortized-free (the acceptance
// bar in ISSUE.md: 0 allocs/packet at steady state).
//
// Exits 0 on success, 1 with a diagnostic on any allocation per packet.
#include <cstdio>
#include <cstdlib>
#include <new>

#include "dataplane/bin_queue.h"
#include "dataplane/packet_pool.h"

namespace {
bool g_counting = false;
unsigned long long g_allocs = 0;
}  // namespace

void* operator new(std::size_t size) {
  if (g_counting) ++g_allocs;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using cam::dataplane::BinQueue;
using cam::dataplane::PacketPool;
using cam::dataplane::PacketRef;
using cam::dataplane::QueuedCopy;

constexpr std::size_t kLinks = 8;       // fan-out of the simulated node
constexpr std::size_t kStreams = 4;     // bins per link
constexpr std::size_t kDepth = 32;      // copies kept resident per queue
constexpr std::uint32_t kBytes = 1250;  // 10 kbit, the bench packet size

}  // namespace

int main() {
  PacketPool pool;
  BinQueue queues[kLinks];

  // The in-flight bound: every queue full plus the packet being cycled.
  pool.reserve(kLinks * kDepth + 1);
  for (BinQueue& q : queues) q.reserve(kStreams, kDepth);

  std::uint64_t order = 0;
  std::uint64_t lcg = 0x9E3779B97F4A7C15ULL;

  // Prefill: keep queues at kDepth so pops hit wrapped ring positions
  // and pressure selection scans real depth, as mid-stream service does.
  auto churn = [&](std::uint64_t packets) {
    for (std::uint64_t i = 0; i < packets; ++i) {
      lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
      const std::uint64_t stream = (lcg >> 33) % kStreams;
      const PacketRef pkt =
          pool.alloc(stream, static_cast<std::uint32_t>(i), kBytes,
                     static_cast<double>(i));
      // Fan one copy to every link, the relay_to_children shape.
      for (std::size_t l = 0; l < kLinks; ++l) {
        pool.add_ref(pkt);
        QueuedCopy c;
        c.pkt = pkt;
        c.dest = static_cast<std::uint32_t>(l);
        c.order = order++;
        queues[l].push(stream, c, kBytes);
      }
      pool.release(pkt);  // creator's reference
      // Serve one copy per link, alternating the two service views so
      // both selection paths stay hot.
      for (std::size_t l = 0; l < kLinks; ++l) {
        if (queues[l].size() <= kDepth) continue;
        const QueuedCopy served = (i & 1) != 0 ? queues[l].pop_pressure(kBytes)
                                               : queues[l].pop_fifo(kBytes);
        pool.release(served.pkt);
      }
    }
  };

  churn(4 * kDepth);  // warm-up: rings and stream index reach capacity

  g_allocs = 0;
  g_counting = true;
  constexpr std::uint64_t kMeasured = 500'000;
  churn(kMeasured);
  g_counting = false;

  if (g_allocs != 0) {
    std::fprintf(stderr,
                 "steady-state packet cycle allocated: %llu allocations over "
                 "%llu packets (%.6f/packet) — data-plane hot path "
                 "regressed\n",
                 g_allocs, static_cast<unsigned long long>(kMeasured),
                 static_cast<double>(g_allocs) /
                     static_cast<double>(kMeasured));
    return 1;
  }

  // Drain and sanity-check the books before declaring victory.
  for (BinQueue& q : queues) {
    while (!q.empty()) pool.release(q.pop_fifo(kBytes).pkt);
  }
  if (pool.in_use() != 0) {
    std::fprintf(stderr, "leak: %zu packets still in use after drain\n",
                 pool.in_use());
    return 1;
  }
  std::printf("ok: %llu packets through %zu links, 0 allocations "
              "(recycled=%llu)\n",
              static_cast<unsigned long long>(kMeasured), kLinks,
              static_cast<unsigned long long>(pool.recycled()));
  return 0;
}
