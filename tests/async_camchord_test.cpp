#include "proto/async_camchord.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "multicast/metrics.h"
#include "overlay/directory.h"
#include "util/rng.h"

namespace cam::proto {
namespace {

struct Fixture {
  RingSpace ring{16};
  Simulator sim;
  UniformLatency lat{5, 25, 3};
  Network net{sim, lat};
  HostBus bus{net};
  AsyncCamChordNet overlay{ring, bus};
  Rng rng{2024};

  NodeInfo info(std::uint32_t lo = 4, std::uint32_t hi = 10) {
    return NodeInfo{static_cast<std::uint32_t>(rng.uniform(lo, hi)),
                    400 + rng.next_double() * 600};
  }

  // Grows the overlay to n members, pacing joins against virtual time so
  // maintenance interleaves like in a live deployment.
  void grow(std::size_t n) {
    Id first = rng.next_below(ring.size());
    overlay.bootstrap(first, info());
    overlay.run_for(500);
    while (overlay.size() < n) {
      Id id = rng.next_below(ring.size());
      if (overlay.running(id)) continue;
      auto members = overlay.members_sorted();
      overlay.spawn(id, info(), members[rng.next_below(members.size())]);
      overlay.run_for(300);  // joins arrive every 300 virtual ms
    }
    settle();
  }

  // Runs until the ring is fully consistent (or the budget expires).
  void settle(SimTime budget_ms = 120'000) {
    SimTime deadline = sim.now() + budget_ms;
    while (sim.now() < deadline) {
      overlay.run_for(2'000);
      if (overlay.ring_consistency() == 1.0) return;
    }
  }
};

TEST(AsyncCamChord, BootstrapAloneIsConsistent) {
  Fixture fx;
  fx.overlay.bootstrap(100, {.capacity = 4, .bandwidth_kbps = 500});
  fx.overlay.run_for(3'000);
  EXPECT_EQ(fx.overlay.size(), 1u);
  EXPECT_DOUBLE_EQ(fx.overlay.ring_consistency(), 1.0);
  LookupResult r = fx.overlay.lookup_blocking(100, 7777);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.owner, 100u);
}

TEST(AsyncCamChord, PacedJoinsConvergeToOneRing) {
  Fixture fx;
  fx.grow(50);
  EXPECT_DOUBLE_EQ(fx.overlay.ring_consistency(), 1.0);
  // Every member reports itself joined and has a predecessor.
  for (Id id : fx.overlay.members_sorted()) {
    EXPECT_TRUE(fx.overlay.node(id).joined());
  }
}

TEST(AsyncCamChord, LookupsResolveCorrectlyAfterConvergence) {
  Fixture fx;
  fx.grow(60);
  // Let fix-neighbor timers refresh entries a while longer.
  fx.overlay.run_for(30'000);
  NodeDirectory truth(fx.ring);
  for (Id id : fx.overlay.members_sorted()) {
    truth.add(id, fx.overlay.node(id).info());
  }
  int correct = 0;
  const int kQueries = 100;
  for (int q = 0; q < kQueries; ++q) {
    Id from = truth.random_node(fx.rng);
    Id k = fx.rng.next_below(fx.ring.size());
    LookupResult r = fx.overlay.lookup_blocking(from, k);
    if (r.ok && r.owner == *truth.responsible(k)) ++correct;
  }
  // Asynchronous maintenance keeps a converged overlay fully correct.
  EXPECT_EQ(correct, kQueries);
}

TEST(AsyncCamChord, MulticastReachesEveryoneWhenConverged) {
  Fixture fx;
  fx.grow(60);
  fx.overlay.run_for(60'000);  // let entries converge via fix timers
  Id source = fx.overlay.members_sorted()[11];
  MulticastTree tree = fx.overlay.multicast(source);
  EXPECT_EQ(tree.size(), fx.overlay.size());
  EXPECT_EQ(capacity_violations(tree, [&](Id x) {
              return fx.overlay.node(x).info().capacity;
            }),
            0u);
}

TEST(AsyncCamChord, CrashesAreDetectedByTimeoutsAndRepaired) {
  Fixture fx;
  fx.grow(50);
  fx.overlay.run_for(30'000);
  // Crash 20% of the members; nobody is told.
  auto members = fx.overlay.members_sorted();
  for (std::size_t i = 0; i < members.size(); i += 5) {
    fx.overlay.crash(members[i]);
  }
  EXPECT_LT(fx.overlay.ring_consistency(), 1.0);
  fx.settle(300'000);
  EXPECT_DOUBLE_EQ(fx.overlay.ring_consistency(), 1.0);
  // And lookups are correct again.
  NodeDirectory truth(fx.ring);
  for (Id id : fx.overlay.members_sorted()) {
    truth.add(id, fx.overlay.node(id).info());
  }
  fx.overlay.run_for(60'000);  // entry refresh
  for (int q = 0; q < 50; ++q) {
    Id from = truth.random_node(fx.rng);
    Id k = fx.rng.next_below(fx.ring.size());
    LookupResult r = fx.overlay.lookup_blocking(from, k);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.owner, *truth.responsible(k));
  }
}

TEST(AsyncCamChord, MulticastSurvivesCrashesPartially) {
  Fixture fx;
  fx.grow(60);
  fx.overlay.run_for(30'000);
  auto members = fx.overlay.members_sorted();
  for (std::size_t i = 0; i < members.size(); i += 10) {
    fx.overlay.crash(members[i]);
  }
  // Immediately multicast, before repair: some regions are lost but a
  // majority is still reached.
  Id source = fx.overlay.members_sorted().front();
  MulticastTree tree = fx.overlay.multicast(source);
  EXPECT_GT(tree.size(), fx.overlay.size() / 2);
  EXPECT_LE(tree.size(), fx.overlay.size());
}

TEST(AsyncCamChord, MessageLossSlowsButDoesNotBreakMaintenance) {
  Fixture fx;
  fx.bus.set_loss(0.05, 99);  // 5% uniform message loss
  fx.grow(40);
  fx.settle(300'000);
  // Under sustained datagram loss the ring hovers near-perfect (an
  // occasional double-loss briefly suspects a live neighbor); it must
  // stay high over time, not just at one lucky instant.
  double worst = 1.0;
  for (int probe = 0; probe < 10; ++probe) {
    fx.overlay.run_for(5'000);
    worst = std::min(worst, fx.overlay.ring_consistency());
  }
  EXPECT_GE(worst, 0.95);
  EXPECT_GT(fx.bus.messages_dropped(), 0u);
}

TEST(AsyncCamChord, JoinRetriesUntilContactAnswers) {
  Fixture fx;
  fx.overlay.bootstrap(1000, fx.info());
  fx.overlay.run_for(1'000);
  // Spawn a node whose contact is crashed mid-join: it keeps retrying
  // and never wrongly declares itself joined.
  fx.overlay.spawn(2000, fx.info(), 1000);
  fx.overlay.run_for(2);  // contact crashes before the lookup finishes
  fx.overlay.crash(1000);
  fx.overlay.run_for(10'000);
  EXPECT_FALSE(fx.overlay.node(2000).joined());
}

TEST(AsyncCamChord, TrafficIsAccountedByClass) {
  Fixture fx;
  fx.grow(30);
  const NetStats& stats = fx.net.stats();
  EXPECT_GT(stats.messages[static_cast<int>(MsgClass::kControl)], 0u);
  EXPECT_GT(stats.messages[static_cast<int>(MsgClass::kMaintenance)], 0u);
  auto data_before = stats.messages[static_cast<int>(MsgClass::kData)];
  (void)fx.overlay.multicast(fx.overlay.members_sorted()[0]);
  EXPECT_GE(fx.net.stats().messages[static_cast<int>(MsgClass::kData)] -
                data_before,
            fx.overlay.size() - 1);
}

}  // namespace
}  // namespace cam::proto
