// The sharded async stack against the serial one, on a fixed scripted
// workload (paced joins, abrupt crashes, late joins, two multicasts).
// The script is precomputed — ids, capacities, and timing never depend
// on execution state — so every engine sees byte-identical inputs:
//
//   * serial AsyncOverlayNet  vs  ShardedAsyncNet with one shard must
//     agree exactly: one shard degenerates to window-sliced run_until
//     on a single Simulator, which is pure cursor motion.
//   * shard counts {1, 2, 4} must agree with each other: conservative
//     windows preserve exact timestamps, per-node event order only
//     depends on same-timestamp ties, and the tie-free uniform latency
//     model makes those measure-zero.
#include "proto/sharded_async.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "proto/async_camchord.h"
#include "proto/async_camkoorde.h"
#include "util/rng.h"

namespace cam::proto {
namespace {

constexpr std::uint32_t kBits = 12;

struct Script {
  std::vector<Id> ids;          // ids[0] bootstraps; the rest join via it
  std::vector<NodeInfo> infos;  // parallel to ids
  std::vector<Id> casualties;   // crashed between the two multicasts
  std::vector<Id> latecomers;   // spawned after the crashes
  std::vector<NodeInfo> late_infos;
};

Script make_script(std::size_t n, std::uint64_t seed) {
  Script sc;
  Rng rng(seed);
  RingSpace ring(kBits);
  auto fresh = [&](std::vector<Id>& out) {
    for (;;) {
      Id id = rng.next_below(ring.size());
      if (std::find(sc.ids.begin(), sc.ids.end(), id) != sc.ids.end())
        continue;
      if (std::find(out.begin(), out.end(), id) != out.end()) continue;
      out.push_back(id);
      return;
    }
  };
  auto info = [&] {
    return NodeInfo{static_cast<std::uint32_t>(rng.uniform(4, 10)),
                    400 + rng.next_double() * 600};
  };
  for (std::size_t i = 0; i < n; ++i) {
    fresh(sc.ids);
    sc.infos.push_back(info());
  }
  for (std::size_t k = 3; k < n && sc.casualties.size() < 5; k += 4) {
    sc.casualties.push_back(sc.ids[k]);
  }
  for (int j = 0; j < 3; ++j) {
    fresh(sc.latecomers);
    sc.late_infos.push_back(info());
  }
  return sc;
}

struct Outcome {
  std::vector<Id> members1, members2;
  double consistency1 = 0, consistency2 = 0;
  std::uint64_t sig1 = 0, sig2 = 0;
  std::size_t size1 = 0, size2 = 0;

  bool operator==(const Outcome&) const = default;
};

// Works unchanged for AsyncOverlayNet and ShardedAsyncNet<...>: the
// wrapper deliberately mirrors the serial surface.
template <typename NetT>
Outcome run_script(NetT& net, const Script& sc) {
  Outcome out;
  net.bootstrap(sc.ids[0], sc.infos[0]);
  net.run_for(500);
  for (std::size_t i = 1; i < sc.ids.size(); ++i) {
    net.spawn(sc.ids[i], sc.infos[i], sc.ids[0]);
    net.run_for(300);
  }
  net.run_for(60'000);
  out.members1 = net.members_sorted();
  out.consistency1 = net.ring_consistency();
  MulticastTree t1 = net.multicast(sc.ids[0]);
  out.sig1 = t1.delivery_signature();
  out.size1 = t1.size();

  for (Id dead : sc.casualties) net.crash(dead);
  for (std::size_t j = 0; j < sc.latecomers.size(); ++j) {
    net.spawn(sc.latecomers[j], sc.late_infos[j], sc.ids[0]);
    net.run_for(400);
  }
  net.run_for(20'000);
  out.members2 = net.members_sorted();
  out.consistency2 = net.ring_consistency();
  MulticastTree t2 = net.multicast(sc.ids[1]);
  out.sig2 = t2.delivery_signature();
  out.size2 = t2.size();
  return out;
}

template <typename NetT>
Outcome run_serial(const Script& sc) {
  RingSpace ring(kBits);
  Simulator sim;
  UniformLatency lat{5, 25, 41};
  Network net{sim, lat};
  HostBus bus{net};
  NetT overlay{ring, bus};
  return run_script(overlay, sc);
}

template <typename NetT>
Outcome run_sharded(const Script& sc, std::uint32_t shards) {
  RingSpace ring(kBits);
  UniformLatency lat{5, 25, 41};
  ShardedAsyncNet<NetT> net(ring, lat, ShardMap{kBits, shards});
  return run_script(net, sc);
}

template <typename NetT>
void check_stack(std::size_t n, std::uint64_t seed) {
  const Script sc = make_script(n, seed);
  const Outcome serial = run_serial<NetT>(sc);

  // Sanity on the serial baseline itself before comparing anything.
  EXPECT_EQ(serial.members1.size(), n);
  EXPECT_DOUBLE_EQ(serial.consistency1, 1.0);
  EXPECT_EQ(serial.size1, n);

  const Outcome one = run_sharded<NetT>(sc, 1);
  EXPECT_EQ(one, serial) << "one shard must replay the serial run";

  for (std::uint32_t shards : {2u, 4u}) {
    const Outcome multi = run_sharded<NetT>(sc, shards);
    EXPECT_EQ(multi, serial) << "shards=" << shards;
  }
}

TEST(ShardedAsync, CamChordSerialEquivalenceAcrossShardCounts) {
  check_stack<AsyncCamChordNet>(28, 0xA3);
}

TEST(ShardedAsync, CamKoordeSerialEquivalenceAcrossShardCounts) {
  check_stack<AsyncCamKoordeNet>(24, 0xB4);
}

// Cross-shard datagrams must actually flow: with two shards the remote
// seam carries most RPC traffic, so membership converging at all proves
// the inject path, and the wrapper's stream ids must stay globally
// sequential like the serial net's.
TEST(ShardedAsync, CrossShardTrafficAndStreamIds) {
  const Script sc = make_script(20, 0xC5);
  RingSpace ring(kBits);
  UniformLatency lat{5, 25, 41};
  ShardedAsyncNet<AsyncCamChordNet> net(ring, lat, ShardMap{kBits, 2});
  const Outcome out = run_script(net, sc);
  EXPECT_DOUBLE_EQ(out.consistency1, 1.0);
  EXPECT_EQ(out.size1, 20u);
  EXPECT_EQ(net.last_stream_id(), 2u);  // two multicasts => streams 1, 2
  // Both shards hold nodes and both executed events.
  EXPECT_GT(net.shard_net(0).size(), 0u);
  EXPECT_GT(net.shard_net(1).size(), 0u);
  EXPECT_GT(net.events_executed(), 0u);
}

}  // namespace
}  // namespace cam::proto
