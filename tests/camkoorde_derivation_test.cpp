// Unit tests of the imaginary-identifier derivation behind CAM-Koorde's
// LOOKUP (Section 4.2): availability rules per capacity, bit accounting,
// and the ps-common growth invariant the routing relies on.
#include <gtest/gtest.h>

#include "camkoorde/neighbor_math.h"
#include "util/rng.h"

namespace cam::camkoorde {
namespace {

TEST(Derivation, BasicGroupAlwaysConsumesOneBit) {
  RingSpace r(10);
  // c = 4: only the basic group exists; every step shifts exactly 1 bit.
  for (Id cursor : {0u, 1u, 513u, 1023u}) {
    for (Id k : {7u, 256u, 1022u}) {
      if (ps_common_bits(r, cursor, k) >= r.bits()) continue;
      Derivation d = choose_derivation(r, 4, cursor, k);
      EXPECT_EQ(d.shift, 1);
      EXPECT_LE(d.high, 1u);
    }
  }
}

TEST(Derivation, WidestAvailableGroupWins) {
  RingSpace r(12);
  // c = 12: s = 3, second group t = 8 (3 bits), third t' = 0.
  // Needed bits 0..7 fit the second group -> 3-bit steps.
  Id cursor = 0;  // ps-common with k=... l = trailing matches of 0-prefix
  Id k = 0b101101;  // l = ps_common(0, k): top bits of 0 are 0s; bottom l
                    // bits of k must be 0 -> l = 0 here (k odd).
  ASSERT_EQ(ps_common_bits(r, cursor, k), 0);
  Derivation d = choose_derivation(r, 12, cursor, k);
  // Second group (s=3): needed = k & 0b111 = 0b101 = 5 < t=8.
  EXPECT_EQ(d.shift, 3);
  EXPECT_EQ(d.high, 5u);
}

TEST(Derivation, ThirdGroupPreferredWhenItsBitsFit) {
  RingSpace r(12);
  // c = 10: s = 2, t = 4 (2 bits), t' = 2, s' = 3 (3 bits, high < 2).
  Id cursor = 0;
  // Next 3 bits of k are 0b001 = 1 < t' = 2: third group applies.
  Id k = 0b001;
  ASSERT_EQ(ps_common_bits(r, cursor, k), 0);
  Derivation d = choose_derivation(r, 10, cursor, k);
  EXPECT_EQ(d.shift, 3);
  EXPECT_EQ(d.high, 1u);
  // Next 3 bits 0b111 = 7 >= t' = 2, but 2 bits 0b11 = 3 < t = 4: second.
  Id k2 = 0b111;
  Derivation d2 = choose_derivation(r, 10, cursor, k2);
  EXPECT_EQ(d2.shift, 2);
  EXPECT_EQ(d2.high, 3u);
}

TEST(Derivation, PsCommonGrowsByShiftEveryStep) {
  // The termination argument of the lookup: each derivation adds at
  // least `shift` matched bits. Property-checked over random walks.
  RingSpace r(14);
  Rng rng(77);
  for (int trial = 0; trial < 2000; ++trial) {
    auto c = static_cast<std::uint32_t>(rng.uniform(4, 40));
    Id cursor = rng.next_below(r.size());
    Id k = rng.next_below(r.size());
    int guard = 0;
    while (ps_common_bits(r, cursor, k) < r.bits()) {
      int l = ps_common_bits(r, cursor, k);
      Derivation d = choose_derivation(r, c, cursor, k);
      ASSERT_GE(d.shift, 1);
      cursor = apply_derivation(r, cursor, d);
      ASSERT_GE(ps_common_bits(r, cursor, k), l + d.shift);
      ASSERT_LT(++guard, r.bits() + 1) << "did not terminate";
    }
    EXPECT_EQ(cursor, k);  // full match means the cursor IS the target
  }
}

TEST(Derivation, AppliedDerivationMatchesShiftInHigh) {
  RingSpace r(10);
  Derivation d{3, 5};
  EXPECT_EQ(apply_derivation(r, 0b1111111111, d),
            r.shift_in_high(0b1111111111, 3, 5));
}

}  // namespace
}  // namespace cam::camkoorde
