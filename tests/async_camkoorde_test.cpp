#include "proto/async_camkoorde.h"

#include <gtest/gtest.h>

#include "multicast/metrics.h"
#include "overlay/directory.h"
#include "util/rng.h"

namespace cam::proto {
namespace {

struct Fixture {
  RingSpace ring{16};
  Simulator sim;
  UniformLatency lat{5, 25, 8};
  Network net{sim, lat};
  HostBus bus{net};
  AsyncCamKoordeNet overlay{ring, bus};
  Rng rng{777};

  NodeInfo info(std::uint32_t lo = 4, std::uint32_t hi = 10) {
    return NodeInfo{static_cast<std::uint32_t>(rng.uniform(lo, hi)),
                    400 + rng.next_double() * 600};
  }

  void grow(std::size_t n) {
    Id first = rng.next_below(ring.size());
    overlay.bootstrap(first, info());
    overlay.run_for(500);
    while (overlay.size() < n) {
      Id id = rng.next_below(ring.size());
      if (overlay.running(id)) continue;
      auto members = overlay.members_sorted();
      overlay.spawn(id, info(), members[rng.next_below(members.size())]);
      overlay.run_for(300);
    }
    settle();
  }

  void settle(SimTime budget_ms = 180'000) {
    SimTime deadline = sim.now() + budget_ms;
    while (sim.now() < deadline) {
      overlay.run_for(2'000);
      if (overlay.ring_consistency() == 1.0) return;
    }
  }
};

TEST(AsyncCamKoorde, PacedJoinsConvergeToOneRing) {
  Fixture fx;
  fx.grow(50);
  EXPECT_DOUBLE_EQ(fx.overlay.ring_consistency(), 1.0);
  for (Id id : fx.overlay.members_sorted()) {
    EXPECT_TRUE(fx.overlay.node(id).joined());
  }
}

TEST(AsyncCamKoorde, LookupsResolveCorrectlyAfterConvergence) {
  Fixture fx;
  fx.grow(50);
  fx.overlay.run_for(60'000);  // fix timers refresh the de Bruijn links
  NodeDirectory truth(fx.ring);
  for (Id id : fx.overlay.members_sorted()) {
    truth.add(id, fx.overlay.node(id).info());
  }
  int correct = 0;
  const int kQueries = 100;
  for (int q = 0; q < kQueries; ++q) {
    Id from = truth.random_node(fx.rng);
    Id k = fx.rng.next_below(fx.ring.size());
    LookupResult r = fx.overlay.lookup_blocking(from, k);
    if (r.ok && r.owner == *truth.responsible(k)) ++correct;
  }
  EXPECT_EQ(correct, kQueries);
}

TEST(AsyncCamKoorde, FloodingMulticastReachesEveryoneWhenConverged) {
  Fixture fx;
  fx.grow(50);
  fx.overlay.run_for(60'000);
  Id source = fx.overlay.members_sorted()[9];
  MulticastTree tree = fx.overlay.multicast(source);
  EXPECT_EQ(tree.size(), fx.overlay.size());
  // Flood children are bounded by the out-neighbor set, hence by c_x.
  EXPECT_EQ(capacity_violations(tree, [&](Id x) {
              return fx.overlay.node(x).info().capacity;
            }),
            0u);
}

TEST(AsyncCamKoorde, DupCheckControlTrafficPrecedesPayloads) {
  Fixture fx;
  fx.grow(40);
  fx.overlay.run_for(60'000);
  auto before_ctrl =
      fx.net.stats().messages[static_cast<int>(MsgClass::kControl)];
  auto before_data =
      fx.net.stats().messages[static_cast<int>(MsgClass::kData)];
  MulticastTree tree = fx.overlay.multicast(fx.overlay.members_sorted()[0]);
  auto ctrl = fx.net.stats().messages[static_cast<int>(MsgClass::kControl)] -
              before_ctrl;
  auto data = fx.net.stats().messages[static_cast<int>(MsgClass::kData)] -
              before_data;
  // Every flood edge pays a dup-check round trip; only fresh targets get
  // the payload (Section 4.3's "short control packet" economy).
  EXPECT_GE(ctrl, 2 * data);
  EXPECT_GE(data, tree.size() - 1);
}

TEST(AsyncCamKoorde, FloodingSurvivesCrashesBetterThanRegionTrees) {
  Fixture fx;
  fx.grow(50);
  fx.overlay.run_for(60'000);
  auto members = fx.overlay.members_sorted();
  for (std::size_t i = 0; i < members.size(); i += 10) {
    fx.overlay.crash(members[i]);
  }
  // Flooding routes around losses: delivery right after the crashes is
  // still (near-)complete, unlike CAM-Chord's delegated regions.
  Id source = fx.overlay.members_sorted().front();
  MulticastTree tree = fx.overlay.multicast(source);
  EXPECT_GE(tree.size(), fx.overlay.size() * 9 / 10);
}

TEST(AsyncCamKoorde, CrashesRepairedByTimeouts) {
  Fixture fx;
  fx.grow(40);
  fx.overlay.run_for(30'000);
  auto members = fx.overlay.members_sorted();
  for (std::size_t i = 0; i < members.size(); i += 5) {
    fx.overlay.crash(members[i]);
  }
  fx.settle(400'000);
  EXPECT_DOUBLE_EQ(fx.overlay.ring_consistency(), 1.0);
}

}  // namespace
}  // namespace cam::proto
