// Workload generator unit tests: the zipf size sampler actually follows
// its law (chi-squared goodness of fit), flash-crowd waves land at
// metronome-exact times, the WorkloadPlan DSL round-trips through its
// canonical text, malformed plans fail with line-precise errors, and
// event expansion is a pure function of (plan, directory, seed).
#include <algorithm>
#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "workload/population.h"
#include "workload/session_workload.h"

namespace cam {
namespace {

using workload::SessionEvent;
using workload::SessionOp;
using workload::WorkloadPlan;

FrozenDirectory small_world(std::size_t n, std::uint64_t seed) {
  workload::PopulationSpec spec;
  spec.n = n;
  spec.ring_bits = 12;
  spec.seed = seed;
  return workload::uniform_capacity_population(spec, 4, 10).freeze();
}

TEST(ZipfSizes, ChiSquaredFitsTheLaw) {
  // 200k draws over sizes 2..17: 16 buckets, 15 degrees of freedom.
  // The statistic for a correct sampler hovers around df; 2*(df + 2)
  // is far outside anything a faithful sampler produces while a
  // misweighted CDF (off-by-one bucket, wrong exponent) lands in the
  // thousands.
  constexpr std::uint32_t kMin = 2, kMax = 17, kDraws = 200'000;
  constexpr double kAlpha = 1.2;
  Rng rng(99);
  const std::vector<std::uint32_t> sizes =
      workload::zipf_group_sizes(kDraws, kAlpha, kMin, kMax, rng);
  ASSERT_EQ(sizes.size(), kDraws);

  std::vector<std::uint32_t> observed(kMax - kMin + 1, 0);
  for (std::uint32_t s : sizes) {
    ASSERT_GE(s, kMin);
    ASSERT_LE(s, kMax);
    ++observed[s - kMin];
  }
  double total_weight = 0;
  std::vector<double> weight(observed.size());
  for (std::size_t i = 0; i < weight.size(); ++i) {
    weight[i] = 1.0 / std::pow(static_cast<double>(i + 1), kAlpha);
    total_weight += weight[i];
  }
  double chi2 = 0;
  for (std::size_t i = 0; i < weight.size(); ++i) {
    const double expected = kDraws * weight[i] / total_weight;
    const double d = observed[i] - expected;
    chi2 += d * d / expected;
  }
  const double df = static_cast<double>(observed.size() - 1);
  EXPECT_LT(chi2, 2.0 * (df + 2.0)) << "zipf sampler off its law";
  // The tail really is heavy: the smallest size dominates the largest.
  EXPECT_GT(observed.front(), 8u * observed.back());
}

TEST(FlashWave, JoinsLandAtExactMetronomeTimes) {
  const FrozenDirectory dir = small_world(64, 5);
  WorkloadPlan plan;
  plan.flash(1, 100.0, 12, 2.5);
  const std::vector<SessionEvent> events =
      workload::generate_events(plan, dir, 7);

  std::vector<SimTime> join_times;
  for (const SessionEvent& e : events) {
    if (e.op == SessionOp::kJoin && e.group == 1) {
      join_times.push_back(e.at_ms);
    }
  }
  ASSERT_EQ(join_times.size(), 12u);
  for (std::size_t i = 0; i < join_times.size(); ++i) {
    // EXPECT_EQ, not NEAR: at + i * spacing with no accumulated drift.
    EXPECT_EQ(join_times[i], 100.0 + static_cast<double>(i) * 2.5);
  }
  // The wave's target group exists before the first join.
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().op, SessionOp::kCreate);
  EXPECT_LE(events.front().at_ms, join_times.front());
}

TEST(WorkloadPlan, CanonicalTextRoundTrips) {
  WorkloadPlan plan;
  plan.groups(40, 1.25, 2, 32)
      .flash(3, 50.0, 24, 0.5)
      .diurnal(100.0, 900.0, 250.0, 0.75, 0.02, 0.015)
      .region_fail(950.0, 1234, 0.1, 6);

  const std::string text = plan.to_string();
  std::string error;
  const std::optional<WorkloadPlan> parsed =
      WorkloadPlan::parse(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(*parsed, plan);
  // Canonical means fixed-point: rendering the parse changes nothing.
  EXPECT_EQ(parsed->to_string(), text);

  // Comments and blank lines are accepted and vanish.
  const std::optional<WorkloadPlan> commented =
      WorkloadPlan::parse("# fleet\n\n" + text + "\n# end\n");
  ASSERT_TRUE(commented.has_value());
  EXPECT_EQ(*commented, plan);
}

TEST(WorkloadPlan, MalformedPlansFailWithLinePreciseErrors) {
  const struct {
    const char* text;
    const char* why;
  } cases[] = {
      {"conga n=4", "unknown item kind"},
      {"groups n=0", "n must be positive"},
      {"groups n=4 min=9 max=3", "min > max"},
      {"flash group=1 at=ten", "unparsable number"},
      {"diurnal start=50 end=20", "start > end"},
      {"diurnal start=0 end=10 period=0", "period must be positive"},
      {"regionfail at=0 radius=0.7", "radius beyond the half ring"},
      {"groups n=4 bogus=1", "unknown key"},
  };
  for (const auto& c : cases) {
    std::string error;
    EXPECT_FALSE(WorkloadPlan::parse(c.text, &error).has_value())
        << c.text << " should fail (" << c.why << ")";
    EXPECT_NE(error.find("line 1"), std::string::npos)
        << c.text << " error lacks a line number: " << error;
  }
  // The line number tracks the offending line, not the count of items.
  std::string error;
  EXPECT_FALSE(
      WorkloadPlan::parse("groups n=4\n# fine\ngroups n=0\n", &error)
          .has_value());
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;
}

TEST(GenerateEvents, PureFunctionOfPlanDirectoryAndSeed) {
  const FrozenDirectory dir = small_world(96, 9);
  WorkloadPlan plan;
  plan.groups(8, 1.0, 2, 12)
      .flash(2, 30.0, 10, 1.0)
      .diurnal(40.0, 240.0, 100.0, 0.5, 0.05, 0.03)
      .region_fail(260.0, dir.ids()[10], 0.08, 4);

  const std::vector<SessionEvent> a =
      workload::generate_events(plan, dir, 11);
  const std::vector<SessionEvent> b =
      workload::generate_events(plan, dir, 11);
  EXPECT_EQ(a, b);  // bit-identical script, element for element
  ASSERT_FALSE(a.empty());

  // Time-sorted, and a different seed reshuffles the script.
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_LE(a[i - 1].at_ms, a[i].at_ms);
  }
  EXPECT_NE(a, workload::generate_events(plan, dir, 12));

  // The regional burst fails exactly the configured count, all drawn
  // from the directory.
  std::size_t fails = 0;
  for (const SessionEvent& e : a) {
    if (e.op == SessionOp::kFail) {
      ++fails;
      EXPECT_TRUE(std::binary_search(dir.ids().begin(), dir.ids().end(),
                                     e.node));
    }
  }
  EXPECT_EQ(fails, 4u);
}

}  // namespace
}  // namespace cam
