#include "camchord/neighbor_math.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "util/intmath.h"
#include "util/rng.h"

namespace cam::camchord {
namespace {

TEST(CamChordMath, NumLevelsIsCeilLogBase) {
  RingSpace r32(5);  // N = 32
  EXPECT_EQ(num_levels(r32, 2), 5);   // 2^5 = 32
  EXPECT_EQ(num_levels(r32, 3), 4);   // 3^4 = 81 >= 32 > 3^3
  EXPECT_EQ(num_levels(r32, 6), 2);   // 6^2 = 36 >= 32
  EXPECT_EQ(num_levels(r32, 32), 1);
  EXPECT_EQ(num_levels(r32, 33), 1);
  RingSpace r19(19);
  EXPECT_EQ(num_levels(r19, 2), 19);
  EXPECT_EQ(num_levels(r19, 4), 10);  // 4^10 = 2^20 >= 2^19
}

TEST(CamChordMath, LevelSeqEquations) {
  // Eq. 1-2 on the paper's Figure 2 configuration: N = 32, c = 3.
  RingSpace r(5);
  Id x = 0;
  // d = 25: i = floor(log3 25) = 2, j = floor(25 / 9) = 2.
  auto ls = level_seq(r, 3, x, 25);
  EXPECT_EQ(ls.level, 2);
  EXPECT_EQ(ls.seq, 2u);
  // d = 31: i = 3, j = 1 (27 <= 31 < 54).
  ls = level_seq(r, 3, x, 31);
  EXPECT_EQ(ls.level, 3);
  EXPECT_EQ(ls.seq, 1u);
  // d = 1: i = 0, j = 1.
  ls = level_seq(r, 3, x, 1);
  EXPECT_EQ(ls.level, 0);
  EXPECT_EQ(ls.seq, 1u);
}

TEST(CamChordMath, LevelSeqWithOffsetOrigin) {
  // The same distances must hold from any origin (wrapping).
  RingSpace r(5);
  auto ls = level_seq(r, 3, 30, r.add(30, 25));
  EXPECT_EQ(ls.level, 2);
  EXPECT_EQ(ls.seq, 2u);
}

TEST(CamChordMath, NeighborIdentifierFormula) {
  RingSpace r(5);
  EXPECT_EQ(neighbor_identifier(r, 3, 0, 0, 1), 1u);
  EXPECT_EQ(neighbor_identifier(r, 3, 0, 0, 2), 2u);
  EXPECT_EQ(neighbor_identifier(r, 3, 0, 1, 1), 3u);
  EXPECT_EQ(neighbor_identifier(r, 3, 0, 1, 2), 6u);
  EXPECT_EQ(neighbor_identifier(r, 3, 0, 2, 1), 9u);
  EXPECT_EQ(neighbor_identifier(r, 3, 0, 2, 2), 18u);
  EXPECT_EQ(neighbor_identifier(r, 3, 0, 3, 1), 27u);
  EXPECT_EQ(neighbor_identifier(r, 3, 30, 1, 2), 4u);  // wraps
}

TEST(CamChordMath, NeighborIdentifiersMatchFigure2) {
  // Figure 2: N = 32, c_x = 3. Neighbor identifiers of x are x+1, x+2
  // (level 0), x+3, x+6 (level 1), x+9, x+18 (level 2), x+27 (level 3 —
  // x + 2*27 = x + 54 laps the ring and is excluded).
  RingSpace r(5);
  auto ids = neighbor_identifiers(r, 3, 0);
  EXPECT_EQ(ids, (std::vector<Id>{1, 2, 3, 6, 9, 18, 27}));
  // Offset origin: same offsets.
  auto ids7 = neighbor_identifiers(r, 3, 7);
  ASSERT_EQ(ids7.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids7[i], r.add(7, ids[i]));
  }
}

TEST(CamChordMath, NeighborCountScalesAsTheorySays) {
  // O(c * log N / log c) identifiers; exact count is (c-1) per level with
  // top-level truncation.
  RingSpace r(19);
  for (std::uint32_t c : {2u, 3u, 4u, 8u, 16u, 64u}) {
    auto ids = neighbor_identifiers(r, c, 12345);
    std::set<Id> uniq(ids.begin(), ids.end());
    EXPECT_EQ(uniq.size(), ids.size()) << "duplicate identifiers, c=" << c;
    EXPECT_LE(ids.size(),
              static_cast<std::size_t>(c - 1) *
                  static_cast<std::size_t>(num_levels(r, c)));
    EXPECT_GE(ids.size(), static_cast<std::size_t>(c - 1));
  }
}

TEST(CamChordMath, LevelSeqIdentifierIsCounterClockwiseClosest) {
  // Section 3.1: x_{i,j} is the neighbor identifier counter-clockwise
  // closest to k. Property-checked over random (x, k, c).
  RingSpace r(12);
  Rng rng(5);
  for (int t = 0; t < 20000; ++t) {
    std::uint32_t c = static_cast<std::uint32_t>(rng.uniform(2, 17));
    Id x = rng.next_below(r.size());
    Id k = rng.next_below(r.size());
    if (k == x) continue;
    auto [i, j] = level_seq(r, c, x, k);
    Id ident = neighbor_identifier(r, c, x, i, j);
    // The identifier is in (x, k]:
    EXPECT_TRUE(r.in_oc(ident, x, k)) << "x=" << x << " k=" << k << " c=" << c;
    // ... and no other neighbor identifier lies in (ident, k].
    for (Id other : neighbor_identifiers(r, c, x)) {
      EXPECT_FALSE(r.in_oo(other, ident, k))
          << "x=" << x << " k=" << k << " c=" << c << " other=" << other;
    }
  }
}

TEST(CamChordMath, SelectChildrenPaperExample) {
  // Section 3.4 walkthrough: c_x = 3, source multicast with k = x - 1.
  // x forwards to x_{3,1} (bound x+31), then the level-2 pick x_{2,2}
  // (bound x+26), then the successor x_{0,1} (bound x+17).
  RingSpace r(5);
  Id x = 0;
  auto kids = select_children(r, 3, x, r.sub(x, 1));
  ASSERT_EQ(kids.size(), 3u);
  EXPECT_EQ(kids[0].identifier, 27u);
  EXPECT_EQ(kids[0].bound, 31u);
  EXPECT_EQ(kids[1].identifier, 18u);
  EXPECT_EQ(kids[1].bound, 26u);
  EXPECT_EQ(kids[2].identifier, 1u);
  EXPECT_EQ(kids[2].bound, 17u);
}

TEST(CamChordMath, SelectChildrenLevelZeroAssignsOnePerIdentifier) {
  RingSpace r(5);
  // d = 2 < c = 4: children are x+2 (bound k) and x+1 (bound x+1); no
  // duplicate successor pick.
  auto kids = select_children(r, 4, 10, 12);
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(kids[0].identifier, 12u);
  EXPECT_EQ(kids[0].bound, 12u);
  EXPECT_EQ(kids[1].identifier, 11u);
  EXPECT_EQ(kids[1].bound, 11u);
}

TEST(CamChordMath, SelectChildrenCountsAreExactlyCapacity) {
  // For i >= 1 the split produces exactly c children (lines 6-15).
  RingSpace r(12);
  Rng rng(6);
  for (int t = 0; t < 20000; ++t) {
    std::uint32_t c = static_cast<std::uint32_t>(rng.uniform(2, 40));
    Id x = rng.next_below(r.size());
    Id k = rng.next_below(r.size());
    if (k == x) continue;
    std::uint64_t d = r.clockwise(x, k);
    auto kids = select_children(r, c, x, k);
    if (d < c) {
      EXPECT_EQ(kids.size(), d);  // level 0: one child per identifier
    } else {
      EXPECT_EQ(kids.size(), c);
    }
  }
}

TEST(CamChordMath, SelectChildrenIdentifiersDistinctAndDescending) {
  RingSpace r(12);
  Rng rng(7);
  for (int t = 0; t < 20000; ++t) {
    std::uint32_t c = static_cast<std::uint32_t>(rng.uniform(2, 40));
    Id x = rng.next_below(r.size());
    Id k = rng.next_below(r.size());
    if (k == x) continue;
    auto kids = select_children(r, c, x, k);
    for (std::size_t a = 1; a < kids.size(); ++a) {
      // Strictly descending clockwise offsets from x.
      EXPECT_LT(r.clockwise(x, kids[a].identifier),
                r.clockwise(x, kids[a - 1].identifier))
          << "x=" << x << " k=" << k << " c=" << c;
    }
  }
}

TEST(CamChordMath, SelectChildrenRegionsPartition) {
  // The assigned sub-regions [identifier, bound] tile (x, k] exactly:
  // child regions are disjoint and their union covers every identifier.
  RingSpace r(9);
  Rng rng(8);
  for (int t = 0; t < 4000; ++t) {
    std::uint32_t c = static_cast<std::uint32_t>(rng.uniform(2, 20));
    Id x = rng.next_below(r.size());
    Id k = rng.next_below(r.size());
    if (k == x) continue;
    auto kids = select_children(r, c, x, k);
    // Walk regions from the top: region_a = [ident_a, bound_a], with
    // bound_{a+1} = ident_a - 1.
    Id expected_bound = k;
    for (const auto& a : kids) {
      EXPECT_EQ(a.bound, expected_bound);
      EXPECT_TRUE(r.in_oc(a.identifier, x, a.bound) ||
                  a.identifier == r.add(x, 1));
      expected_bound = r.sub(a.identifier, 1);
    }
    // After the last (lowest) child, everything down to x+1 is assigned.
    EXPECT_EQ(expected_bound, x);
  }
}

}  // namespace
}  // namespace cam::camchord
