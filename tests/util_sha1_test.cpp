#include "util/sha1.h"

#include <gtest/gtest.h>

#include <string>

namespace cam {
namespace {

// FIPS 180-1 / RFC 3174 test vectors.
TEST(Sha1, EmptyString) {
  EXPECT_EQ(to_hex(sha1("")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(to_hex(sha1("abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  EXPECT_EQ(
      to_hex(sha1("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  Sha1 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, ExactBlockBoundary) {
  // 64 bytes: padding spills into a second block.
  std::string msg(64, 'x');
  Sha1 h;
  h.update(msg);
  EXPECT_EQ(to_hex(h.finish()), to_hex(sha1(msg)));
}

TEST(Sha1, IncrementalMatchesOneShot) {
  std::string msg = "The quick brown fox jumps over the lazy dog";
  Sha1 h;
  for (char ch : msg) h.update(&ch, 1);
  EXPECT_EQ(to_hex(h.finish()), to_hex(sha1(msg)));
  EXPECT_EQ(to_hex(sha1(msg)), "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
}

TEST(Sha1, ResetReusesHasher) {
  Sha1 h;
  h.update("garbage");
  (void)h.finish();
  h.reset();
  h.update("abc");
  EXPECT_EQ(to_hex(h.finish()), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, Prefix64MatchesDigestPrefix) {
  Sha1Digest d = sha1("node-17");
  std::uint64_t expect = 0;
  for (int i = 0; i < 8; ++i) expect = (expect << 8) | d[i];
  EXPECT_EQ(sha1_prefix64("node-17"), expect);
}

TEST(Sha1, Prefix64SpreadsInputs) {
  // Different host names land far apart — basic placement sanity.
  std::uint64_t a = sha1_prefix64("host-a");
  std::uint64_t b = sha1_prefix64("host-b");
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace cam
