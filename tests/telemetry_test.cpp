// Unit tests for the telemetry subsystem: counter / gauge / histogram
// semantics, the bounded ring-buffer tracer, JSONL round-tripping, and
// multicast trace replay.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "telemetry/export.h"
#include "telemetry/metrics.h"
#include "telemetry/sink.h"
#include "telemetry/trace.h"

namespace cam::telemetry {
namespace {

TEST(TelemetryCounter, AccumulatesAndDefaultsToZero) {
  Registry reg;
  EXPECT_EQ(reg.value("x"), 0u);
  reg.counter("x").add(3);
  reg.counter("x").add();
  EXPECT_EQ(reg.value("x"), 4u);
  EXPECT_EQ(reg.value("unknown"), 0u);
}

TEST(TelemetryCounter, ClassAndNodeSeriesAreIndependent) {
  Registry reg;
  reg.counter("msgs", MsgClass::kData).add(5);
  reg.counter("msgs", MsgClass::kControl).add(2);
  reg.counter("msgs", Id{42}).add(7);
  // Label series do not implicitly roll up into the aggregate.
  EXPECT_EQ(reg.value("msgs"), 0u);
  EXPECT_EQ(reg.value("msgs", MsgClass::kData), 5u);
  EXPECT_EQ(reg.value("msgs", MsgClass::kControl), 2u);
  EXPECT_EQ(reg.value("msgs", MsgClass::kMaintenance), 0u);
  const auto& fam = reg.counters().at("msgs");
  EXPECT_TRUE(fam.has_class_series());
  EXPECT_EQ(fam.per_node.at(42).value(), 7u);
}

TEST(TelemetryGauge, LastWriteWins) {
  Registry reg;
  reg.gauge("g").set(1.5);
  reg.gauge("g").set(0.25);
  EXPECT_DOUBLE_EQ(reg.gauge_value("g"), 0.25);
  EXPECT_DOUBLE_EQ(reg.gauge_value("missing"), 0.0);
}

TEST(TelemetryHistogram, BucketBoundariesAreHalfOpenPowersOfTwo) {
  // Bucket i covers (2^(kMinExp+i-1), 2^(kMinExp+i)]: an exact power of
  // two lands in the bucket it tops, the next representable value above
  // it in the next bucket.
  EXPECT_EQ(Histogram::bucket_of(1.0), -Histogram::kMinExp);
  EXPECT_EQ(Histogram::bucket_of(std::nextafter(1.0, 2.0)),
            -Histogram::kMinExp + 1);
  EXPECT_EQ(Histogram::bucket_of(2.0), -Histogram::kMinExp + 1);
  EXPECT_EQ(Histogram::bucket_of(0.5), -Histogram::kMinExp - 1);
  // Everything at or below the smallest bound collapses into bucket 0,
  // everything above the largest into the last bucket.
  EXPECT_EQ(Histogram::bucket_of(0.0), 0);
  EXPECT_EQ(Histogram::bucket_of(1e30), Histogram::kBuckets - 1);
  EXPECT_DOUBLE_EQ(Histogram::bucket_upper(-Histogram::kMinExp), 1.0);
}

TEST(TelemetryHistogram, ExactMomentsApproximateQuantiles) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  // Quantiles are bucket-interpolated: right order of magnitude and
  // clamped to the observed envelope.
  double p50 = h.quantile(0.5);
  EXPECT_GE(p50, 25.0);
  EXPECT_LE(p50, 75.0);
  EXPECT_GE(h.quantile(0.0), 1.0);
  EXPECT_LE(h.quantile(1.0), 100.0);
  EXPECT_GE(h.quantile(0.99), p50);
}

TEST(TelemetrySink, NullSinkIsInertAndCheap) {
  Sink sink;  // both pointers null
  sink.count("x");
  sink.count_node("x", Id{1});
  sink.count_cls("x", MsgClass::kData);
  sink.observe("h", 1.0);
  sink.set_gauge("g", 2.0);
  sink.trace(EventType::kCrash, 0.0, Id{1});
  // Nothing to assert beyond "does not crash": there is no registry.
  SUCCEED();
}

TEST(TelemetrySink, WritesAggregateAndLabelSeries) {
  Registry reg;
  Sink sink{&reg, nullptr};
  sink.count_cls("msgs", MsgClass::kData, 3);
  sink.count_node("del", Id{9});
  EXPECT_EQ(reg.value("msgs"), 3u);  // aggregate kept in lock-step
  EXPECT_EQ(reg.value("msgs", MsgClass::kData), 3u);
  EXPECT_EQ(reg.value("del"), 1u);
  EXPECT_EQ(reg.counters().at("del").per_node.at(9).value(), 1u);
}

TEST(TelemetryTracer, RingEvictsOldestFirst) {
  Tracer tr(4);
  for (std::uint64_t i = 0; i < 7; ++i) {
    tr.record({.time = static_cast<SimTime>(i),
               .type = EventType::kPing,
               .node = i});
  }
  EXPECT_EQ(tr.size(), 4u);
  EXPECT_EQ(tr.capacity(), 4u);
  EXPECT_EQ(tr.dropped(), 3u);
  auto ev = tr.events();
  ASSERT_EQ(ev.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ev[i].node, i + 3);  // 0,1,2 evicted; oldest survivor first
  }
  tr.clear();
  EXPECT_EQ(tr.size(), 0u);
  EXPECT_EQ(tr.dropped(), 0u);
}

TEST(TelemetryTracer, MaskGatesRecording) {
  Tracer tr(8, kMilestoneEvents);
  EXPECT_FALSE(tr.wants(EventType::kStabilize));
  EXPECT_FALSE(tr.wants(EventType::kRpcIssue));
  EXPECT_TRUE(tr.wants(EventType::kMulticastDeliver));
  EXPECT_TRUE(tr.wants(EventType::kRpcTimeout));
  Sink sink{nullptr, &tr};
  sink.trace(EventType::kStabilize, 1.0, Id{1});
  sink.trace(EventType::kMulticastDeliver, 2.0, Id{1});
  ASSERT_EQ(tr.size(), 1u);
  EXPECT_EQ(tr.events()[0].type, EventType::kMulticastDeliver);
}

TEST(TelemetryTrace, EventNamesRoundTrip) {
  for (int i = 0; i < kNumEventTypes; ++i) {
    EventType t = static_cast<EventType>(i);
    EventType back;
    ASSERT_TRUE(event_from_name(event_name(t), back)) << event_name(t);
    EXPECT_EQ(back, t);
  }
  EventType dummy;
  EXPECT_FALSE(event_from_name("no_such_event", dummy));
}

TEST(TelemetryExport, JsonlRoundTripsExactly) {
  std::vector<TraceEvent> in = {
      {12.5, EventType::kMulticastSend, 7, 3, 1, 2},
      {13.0, EventType::kMulticastDeliver, 3, 7, 1, 2},
      {99.75, EventType::kRpcTimeout, 3, 11, 42, 1},
      {100.0, EventType::kRingSample, 0, 0, 8, 8},
  };
  std::stringstream ss;
  write_jsonl(in, ss);
  ss << "this line is not json\n";  // parser must skip garbage
  auto out = read_jsonl(ss);
  EXPECT_EQ(out, in);
}

TEST(TelemetryExport, JsonAndCsvContainEverySeries) {
  Registry reg;
  reg.counter("c").add(2);
  reg.counter("c", MsgClass::kData).add(2);
  reg.gauge("g").set(0.5);
  reg.histogram("h").record(3.0);
  std::stringstream js, cs;
  write_json(reg, js);
  write_csv(reg, cs);
  for (const char* needle : {"\"c\"", "\"g\"", "\"h\"", "\"data\""}) {
    EXPECT_NE(js.str().find(needle), std::string::npos) << needle;
  }
  for (const char* needle : {"counter,c", "gauge,g", "histogram,h"}) {
    EXPECT_NE(cs.str().find(needle), std::string::npos) << needle;
  }
}

TEST(TelemetryReplay, RebuildsFirstDeliveryPerNode) {
  std::vector<TraceEvent> ev = {
      // Stream 5: source 1 delivers to itself, fans out to 2 and 3.
      {1.0, EventType::kMulticastDeliver, 1, 1, 5, 0},
      {1.0, EventType::kMulticastSend, 1, 2, 5, 1},
      {2.0, EventType::kMulticastDeliver, 2, 1, 5, 1},
      {3.0, EventType::kMulticastDeliver, 3, 2, 5, 2},
      // A different stream and a duplicate for node 3 — both ignored.
      {4.0, EventType::kMulticastDeliver, 9, 9, 6, 0},
      {5.0, EventType::kMulticastDeliver, 3, 1, 5, 1},
  };
  auto replayed = replay_multicast(ev, 5);
  ASSERT_EQ(replayed.size(), 3u);
  EXPECT_EQ(replayed.at(1), (ReplayedDelivery{1, 0}));
  EXPECT_EQ(replayed.at(2), (ReplayedDelivery{1, 1}));
  EXPECT_EQ(replayed.at(3), (ReplayedDelivery{2, 2}));  // first copy wins
  EXPECT_TRUE(replay_multicast(ev, 777).empty());
}

}  // namespace
}  // namespace cam::telemetry
