// One-registry-per-cell ownership (DESIGN.md §9): Registry and Tracer
// are single-owner — two live overlays sharing a sink is the data race
// the parallel sweep runtime must never allow, and it asserts rather
// than racing. These are death tests for the assert plus positive tests
// for the legal hand-off patterns.
#include <gtest/gtest.h>

#include "proto/async_camchord.h"
#include "proto/host_bus.h"
#include "sim/latency.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace cam {
namespace {

struct World {
  RingSpace ring{10};
  Simulator sim;
  ConstantLatency lat{1.0};
  Network net{sim, lat};
  proto::HostBus bus{net};
  proto::AsyncCamChordNet overlay{ring, bus};
};

TEST(TelemetryOwnership, AttachDetachReattachIsLegal) {
  telemetry::Registry reg;
  telemetry::Tracer tracer;
  {
    World w1;
    w1.overlay.set_telemetry({&reg, &tracer});
    // Re-attaching the same sink to the same overlay is a no-op.
    w1.overlay.set_telemetry({&reg, &tracer});
    // Explicit detach releases ownership ...
    w1.overlay.set_telemetry({});
    // ... so another overlay in the same scope may claim it.
    World w2;
    w2.overlay.set_telemetry({&reg, &tracer});
  }
  // w2's destructor released the sinks; sequential reuse is legal.
  World w3;
  w3.overlay.set_telemetry({&reg, &tracer});
}

TEST(TelemetryOwnership, SwappingSinksReleasesTheOldOnes) {
  telemetry::Registry reg_a, reg_b;
  World w1;
  w1.overlay.set_telemetry({&reg_a, nullptr});
  w1.overlay.set_telemetry({&reg_b, nullptr});  // detaches reg_a
  World w2;
  w2.overlay.set_telemetry({&reg_a, nullptr});  // reg_a is free again
}

using TelemetryOwnershipDeathTest = ::testing::Test;

TEST(TelemetryOwnershipDeathTest, TwoOverlaysSharingARegistryAsserts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  telemetry::Registry reg;
  World w1;
  w1.overlay.set_telemetry({&reg, nullptr});
  EXPECT_DEATH(
      {
        World w2;
        w2.overlay.set_telemetry({&reg, nullptr});
      },
      "single-owner|two live hosts");
}

TEST(TelemetryOwnershipDeathTest, TwoOverlaysSharingATracerAsserts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  telemetry::Tracer tracer;
  World w1;
  w1.overlay.set_telemetry({nullptr, &tracer});
  EXPECT_DEATH(
      {
        World w2;
        w2.overlay.set_telemetry({nullptr, &tracer});
      },
      "single-owner|two live hosts");
}

TEST(TelemetryOwnershipDeathTest, DirectDoubleAttachAsserts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  telemetry::Registry reg;
  int host_a = 0, host_b = 0;
  reg.attach_host(&host_a);
  reg.attach_host(&host_a);  // same host: legal no-op
  EXPECT_DEATH(reg.attach_host(&host_b), "two live hosts");
  reg.detach_host(&host_a);
  reg.attach_host(&host_b);  // after detach: legal
}

}  // namespace
}  // namespace cam
