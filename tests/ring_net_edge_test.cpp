// Edge cases of the shared protocol-mode machinery (overlay/ring_net.h):
// tiny rings, duplicate bootstraps, leave-to-empty, self-healing of the
// two-node ring, and message accounting of graceful departures.
#include <gtest/gtest.h>

#include "camchord/net.h"
#include "camkoorde/net.h"

namespace cam {
namespace {

struct Env {
  RingSpace ring{12};
  Simulator sim;
  ConstantLatency lat{1.0};
  Network net{sim, lat};
};

TEST(RingNetEdge, DuplicateBootstrapThrows) {
  Env env;
  camchord::CamChordNet overlay(env.ring, env.net);
  overlay.bootstrap(5, {.capacity = 4, .bandwidth_kbps = 1});
  EXPECT_THROW(overlay.bootstrap(5, {.capacity = 4, .bandwidth_kbps = 1}),
               std::invalid_argument);
}

TEST(RingNetEdge, TwoNodeRingClosesViaStabilize) {
  Env env;
  camchord::CamChordNet overlay(env.ring, env.net);
  overlay.bootstrap(100, {.capacity = 4, .bandwidth_kbps = 1});
  ASSERT_TRUE(overlay.join(200, {.capacity = 4, .bandwidth_kbps = 1}, 100));
  overlay.converge();
  EXPECT_EQ(overlay.successor(100), 200u);
  EXPECT_EQ(overlay.successor(200), 100u);
  EXPECT_EQ(*overlay.predecessor(100), 200u);
  EXPECT_EQ(*overlay.predecessor(200), 100u);
  MulticastTree t = overlay.multicast(100);
  EXPECT_EQ(t.size(), 2u);
}

TEST(RingNetEdge, LeaveDownToSingleton) {
  Env env;
  camkoorde::CamKoordeNet overlay(env.ring, env.net);
  overlay.bootstrap(10, {.capacity = 4, .bandwidth_kbps = 1});
  ASSERT_TRUE(overlay.join(20, {.capacity = 4, .bandwidth_kbps = 1}, 10));
  ASSERT_TRUE(overlay.join(30, {.capacity = 4, .bandwidth_kbps = 1}, 10));
  overlay.converge();
  EXPECT_TRUE(overlay.leave(20));
  EXPECT_TRUE(overlay.leave(30));
  overlay.converge();
  EXPECT_EQ(overlay.size(), 1u);
  EXPECT_EQ(overlay.successor(10), 10u);
  auto r = overlay.lookup(10, 3000);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.owner, 10u);
}

TEST(RingNetEdge, FailLastOtherNodeLeavesConsistentSingleton) {
  Env env;
  camchord::CamChordNet overlay(env.ring, env.net);
  overlay.bootstrap(10, {.capacity = 4, .bandwidth_kbps = 1});
  ASSERT_TRUE(overlay.join(99, {.capacity = 4, .bandwidth_kbps = 1}, 10));
  overlay.converge();
  ASSERT_TRUE(overlay.fail(99));
  overlay.converge();
  EXPECT_EQ(overlay.successor(10), 10u);
  MulticastTree t = overlay.multicast(10);
  EXPECT_EQ(t.size(), 1u);
}

TEST(RingNetEdge, LeaveNonMemberAndFailNonMemberAreNoops) {
  Env env;
  camchord::CamChordNet overlay(env.ring, env.net);
  overlay.bootstrap(10, {.capacity = 4, .bandwidth_kbps = 1});
  EXPECT_FALSE(overlay.leave(11));
  EXPECT_FALSE(overlay.fail(11));
  EXPECT_EQ(overlay.size(), 1u);
}

TEST(RingNetEdge, GracefulLeaveNotifiesNeighbors) {
  Env env;
  camchord::CamChordNet overlay(env.ring, env.net);
  overlay.bootstrap(10, {.capacity = 4, .bandwidth_kbps = 1});
  ASSERT_TRUE(overlay.join(20, {.capacity = 4, .bandwidth_kbps = 1}, 10));
  ASSERT_TRUE(overlay.join(30, {.capacity = 4, .bandwidth_kbps = 1}, 10));
  overlay.converge();
  auto before = env.net.stats().messages[static_cast<int>(MsgClass::kControl)];
  ASSERT_TRUE(overlay.leave(20));
  auto after = env.net.stats().messages[static_cast<int>(MsgClass::kControl)];
  EXPECT_GE(after - before, 2u);  // handover to pred and succ
  // Ring is immediately intact (graceful departure links pred <-> succ).
  EXPECT_EQ(overlay.successor(10), 30u);
  EXPECT_EQ(*overlay.predecessor(30), 10u);
}

TEST(RingNetEdge, JoinViaDeadContactFails) {
  Env env;
  camchord::CamChordNet overlay(env.ring, env.net);
  overlay.bootstrap(10, {.capacity = 4, .bandwidth_kbps = 1});
  EXPECT_FALSE(overlay.join(20, {.capacity = 4, .bandwidth_kbps = 1}, 999));
}

}  // namespace
}  // namespace cam
