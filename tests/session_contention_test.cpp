// Multi-group contention tests: two groups forced through the same
// hotspot relay (one shared source uplink serving both trees).
//
//   * kShared really contends: the light group's deliveries are
//     measurably delayed by the heavy group's burst versus a solo run.
//   * kLedgerShares really isolates: the uncongested group's per-group
//     stats are BIT-identical to its solo run under the same ledger —
//     the other group's queue depth never leaks into its schedule.
//   * Admission control is per group: only the congested group's source
//     pauses; the other group never stalls (ISSUE 7 satellite).
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "session/multi_forwarder.h"
#include "session/session.h"
#include "strategy/strategy.h"
#include "workload/population.h"

namespace cam {
namespace {

using session::GroupRunStats;
using session::GroupTraffic;
using session::JoinOutcome;
using session::MultiGroupConfig;
using session::MultiGroupForwarder;
using session::MultiGroupStats;
using session::SchedMode;
using session::SessionLayer;

// Both groups rooted at ids[0] with the same membership: every copy of
// either group crosses ids[0]'s single uplink, the hotspot.
struct World {
  FrozenDirectory dir;
  std::unique_ptr<SessionLayer> layer;

  static FrozenDirectory make_world(std::uint64_t seed) {
    workload::PopulationSpec spec;
    spec.n = 16;
    spec.ring_bits = 12;
    spec.seed = seed;
    // Fixed uplinks: the share arithmetic below stays predictable, so
    // the admission test can place its watermarks between the two
    // groups' backlog regimes with confidence.
    spec.bw_lo_kbps = 1000;
    spec.bw_hi_kbps = 1000;
    return workload::uniform_capacity_population(spec, 16, 16).freeze();
  }

  explicit World(std::uint64_t seed, std::size_t g2_members = 8)
      : dir(make_world(seed)) {
    layer = std::make_unique<SessionLayer>(dir, strategy::registry().make("camchord"));
    const std::vector<Id>& ids = dir.ids();
    EXPECT_TRUE(layer->create_group(1, ids[0]));
    EXPECT_TRUE(layer->create_group(2, ids[0]));
    for (std::size_t i = 1; i <= 8; ++i) {
      EXPECT_EQ(layer->join(1, ids[i]).outcome, JoinOutcome::kJoined);
      if (i <= g2_members) {
        EXPECT_EQ(layer->join(2, ids[i]).outcome, JoinOutcome::kJoined);
      }
    }
    EXPECT_TRUE(layer->check().empty());
  }
};

GroupTraffic heavy() {
  GroupTraffic t;
  t.group = 1;
  t.num_packets = 64;  // back-to-back burst: saturates the hotspot
  return t;
}

GroupTraffic light() {
  GroupTraffic t;
  t.group = 2;
  t.num_packets = 8;
  t.source_rate_kbps = 200;  // paced, nowhere near its share
  return t;
}

void expect_same_group_stats(const GroupRunStats& a,
                             const GroupRunStats& b) {
  EXPECT_EQ(a.group, b.group);
  // Exact doubles on purpose: "bit-identical", not "close".
  EXPECT_EQ(a.session.session_rate_kbps, b.session.session_rate_kbps);
  EXPECT_EQ(a.session.completion_ms, b.session.completion_ms);
  EXPECT_EQ(a.session.mean_rate_kbps, b.session.mean_rate_kbps);
  EXPECT_EQ(a.session.max_first_packet_ms, b.session.max_first_packet_ms);
  EXPECT_EQ(a.session.receivers, b.session.receivers);
  EXPECT_EQ(a.packets_emitted, b.packets_emitted);
  EXPECT_EQ(a.copies_delivered, b.copies_delivered);
  EXPECT_EQ(a.copies_expected, b.copies_expected);
  EXPECT_EQ(a.duplicate_deliveries, b.duplicate_deliveries);
  EXPECT_EQ(a.admission_pauses, b.admission_pauses);
  EXPECT_EQ(a.p99_latency_ms, b.p99_latency_ms);
  EXPECT_EQ(a.mean_latency_ms, b.mean_latency_ms);
}

TEST(SessionContention, SharedUplinkReallyContends) {
  const World w(21);
  const ConstantLatency latency(5.0);
  const MultiGroupConfig cfg{SchedMode::kShared};

  const MultiGroupStats solo =
      MultiGroupForwarder(*w.layer, latency, cfg).run({light()});
  const MultiGroupStats both =
      MultiGroupForwarder(*w.layer, latency, cfg).run({heavy(), light()});
  ASSERT_EQ(solo.groups.size(), 1u);
  ASSERT_EQ(both.groups.size(), 2u);

  const GroupRunStats& solo2 = solo.groups[0];
  const GroupRunStats& with2 = both.groups[1];
  ASSERT_EQ(with2.group, 2u);
  // Same payload delivered either way (FIFO delays, it never drops)...
  EXPECT_EQ(with2.copies_delivered, solo2.copies_delivered);
  EXPECT_EQ(with2.duplicate_deliveries, 0u);
  // ...but the heavy group's burst in the shared FIFO visibly delays
  // the light group versus running alone.
  EXPECT_GT(with2.session.completion_ms, solo2.session.completion_ms);
  EXPECT_GT(with2.mean_latency_ms, solo2.mean_latency_ms);
}

TEST(SessionContention, LedgerSharesIsolateTheUncongestedGroup) {
  const World w(22);
  const ConstantLatency latency(5.0);
  const MultiGroupConfig cfg{SchedMode::kLedgerShares};

  const MultiGroupStats solo =
      MultiGroupForwarder(*w.layer, latency, cfg).run({light()});
  const MultiGroupStats both =
      MultiGroupForwarder(*w.layer, latency, cfg).run({heavy(), light()});
  ASSERT_EQ(both.groups.size(), 2u);
  ASSERT_EQ(both.groups[1].group, 2u);

  // The uncongested group cannot tell the heavy group exists: its whole
  // scoreboard matches the solo run bit for bit.
  expect_same_group_stats(both.groups[1], solo.groups[0]);

  // Sanity: the heavy group did queue (this was a real contention run,
  // not two idle groups agreeing trivially).
  EXPECT_GT(both.max_backlog_ms, 0.0);
  EXPECT_GT(both.groups[0].copies_delivered, 0u);
}

TEST(SessionContention, AdmissionPausesArePerGroup) {
  // Group 2 is a single source->child link paced far below its ledger
  // share: its transient backlog is one 10-kbit packet against at least
  // 1000/9 kbps (worst case: group 1 holds eight slots at the source),
  // i.e. under ~90 ms. Group 1 bursts 64 packets back-to-back, piling
  // seconds of backlog. Watermarks at 120/40 ms separate the regimes.
  const World w(23, 1);
  const ConstantLatency latency(5.0);
  MultiGroupConfig cfg{SchedMode::kLedgerShares};
  cfg.admission_high_ms = 120.0;
  cfg.admission_low_ms = 40.0;

  GroupTraffic paced = light();
  paced.num_packets = 8;
  paced.source_rate_kbps = 40;  // one packet per 250 ms

  const MultiGroupStats both =
      MultiGroupForwarder(*w.layer, latency, cfg).run({heavy(), paced});
  ASSERT_EQ(both.groups.size(), 2u);
  const GroupRunStats& g1 = both.groups[0];
  const GroupRunStats& g2 = both.groups[1];

  // The burst group trips its watermark and pauses...
  EXPECT_GT(g1.admission_pauses, 0u);
  EXPECT_GT(g1.admission_paused_ms, 0.0);
  // ...while the paced group never stalls: pauses are per group, not a
  // global emergency brake.
  EXPECT_EQ(g2.admission_pauses, 0u);
  EXPECT_EQ(g2.admission_paused_ms, 0.0);

  // Pausing is flow control, not loss: everything still arrives once.
  EXPECT_EQ(g1.copies_delivered, g1.copies_expected);
  EXPECT_EQ(g2.copies_delivered, g2.copies_expected);
  EXPECT_EQ(g1.duplicate_deliveries + g2.duplicate_deliveries, 0u);
}

}  // namespace
}  // namespace cam
