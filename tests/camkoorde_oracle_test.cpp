#include "camkoorde/oracle.h"

#include <gtest/gtest.h>

#include <cmath>

#include "multicast/metrics.h"
#include "test_util.h"
#include "util/rng.h"

namespace cam::camkoorde {
namespace {

using test::capacity_fn;
using test::make_population;

struct Param {
  std::size_t n;
  int bits;
  std::uint32_t cap_lo, cap_hi;
};

class CamKoordeLookupProperty : public ::testing::TestWithParam<Param> {};

TEST_P(CamKoordeLookupProperty, ResolvesToResponsibleNode) {
  auto [n, bits, cap_lo, cap_hi] = GetParam();
  NodeDirectory dir = make_population(n, bits, cap_lo, cap_hi);
  FrozenDirectory f = dir.freeze();
  Rng rng(31);
  for (int t = 0; t < 300; ++t) {
    Id from = f.ids()[rng.next_below(f.size())];
    Id k = rng.next_below(f.ring().size());
    auto r = lookup(f.ring(), f, capacity_fn(f), from, k);
    ASSERT_TRUE(r.ok) << "from=" << from << " k=" << k;
    EXPECT_EQ(r.owner, *f.responsible(k)) << "from=" << from << " k=" << k;
  }
}

TEST_P(CamKoordeLookupProperty, HopCountsAreModest) {
  auto [n, bits, cap_lo, cap_hi] = GetParam();
  NodeDirectory dir = make_population(n, bits, cap_lo, cap_hi);
  FrozenDirectory f = dir.freeze();
  Rng rng(37);
  double total = 0;
  int count = 0;
  for (int t = 0; t < 200; ++t) {
    Id from = f.ids()[rng.next_below(f.size())];
    Id k = rng.next_below(f.ring().size());
    auto r = lookup(f.ring(), f, capacity_fn(f), from, k);
    ASSERT_TRUE(r.ok);
    total += static_cast<double>(r.hops());
    ++count;
  }
  // Theorem 5 gives O(log n / E(log c)) for multicast paths; lookups on a
  // sparse ring pay extra correction hops, so only the *average* is
  // checked, with generous slack. Routing is dominated by the b-bit
  // transform, so b is the natural yardstick.
  EXPECT_LE(total / count, static_cast<double>(bits));
}

INSTANTIATE_TEST_SUITE_P(
    Populations, CamKoordeLookupProperty,
    ::testing::Values(Param{50, 12, 4, 4}, Param{100, 12, 4, 10},
                      Param{500, 16, 4, 10}, Param{500, 16, 4, 4},
                      Param{1000, 19, 4, 10}, Param{1000, 19, 20, 40},
                      Param{2000, 19, 4, 200}),
    [](const auto& info) {
      const auto& p = info.param;
      return "n" + std::to_string(p.n) + "b" + std::to_string(p.bits) + "c" +
             std::to_string(p.cap_lo) + "to" + std::to_string(p.cap_hi);
    });

class CamKoordeMulticastProperty : public ::testing::TestWithParam<Param> {};

TEST_P(CamKoordeMulticastProperty, FloodReachesEveryone) {
  auto [n, bits, cap_lo, cap_hi] = GetParam();
  NodeDirectory dir = make_population(n, bits, cap_lo, cap_hi);
  FrozenDirectory f = dir.freeze();
  Rng rng(41);
  for (int t = 0; t < 5; ++t) {
    Id source = f.ids()[rng.next_below(f.size())];
    MulticastTree tree = multicast(f.ring(), f, capacity_fn(f), source);
    // Flooding over a digraph that contains all successor edges reaches
    // every member; the duplicate check keeps it exactly-once.
    EXPECT_EQ(tree.size(), f.size());
    EXPECT_EQ(tree.duplicate_deliveries(), 0u);
    EXPECT_EQ(capacity_violations(
                  tree, [&](Id x) { return f.info(x).capacity; }),
              0u);
  }
}

TEST_P(CamKoordeMulticastProperty, SuppressionOnlyWhereEdgesOverlap) {
  auto [n, bits, cap_lo, cap_hi] = GetParam();
  NodeDirectory dir = make_population(n, bits, cap_lo, cap_hi);
  FrozenDirectory f = dir.freeze();
  MulticastTree tree = multicast(f.ring(), f, capacity_fn(f), f.ids()[0]);
  // Total forwards attempted = edges of the flood digraph reachable from
  // the source; n-1 deliver, the rest are suppressed checks.
  std::uint64_t attempted = tree.suppressed_forwards() + (tree.size() - 1);
  std::uint64_t degree_sum = 0;
  for (Id x : f.ids()) {
    degree_sum += resolved_neighbors(f.ring(), f, f.info(x).capacity, x).size();
  }
  EXPECT_LE(attempted, degree_sum);
  EXPECT_GE(attempted, tree.size() - 1);
}

INSTANTIATE_TEST_SUITE_P(
    Populations, CamKoordeMulticastProperty,
    ::testing::Values(Param{2, 12, 4, 4}, Param{3, 12, 4, 8},
                      Param{50, 12, 4, 4}, Param{100, 12, 4, 10},
                      Param{500, 16, 4, 10}, Param{1000, 19, 4, 10},
                      Param{1000, 19, 20, 40}, Param{2000, 19, 4, 200}),
    [](const auto& info) {
      const auto& p = info.param;
      return "n" + std::to_string(p.n) + "b" + std::to_string(p.bits) + "c" +
             std::to_string(p.cap_lo) + "to" + std::to_string(p.cap_hi);
    });

TEST(CamKoordeMulticast, DepthShrinksWithCapacity) {
  // Theorem 6: path length O(log n / log c) — larger capacities, shorter
  // trees. Compare average path lengths at c = 4 vs c = 32.
  NodeDirectory small_c = make_population(2000, 19, 4, 4, 7);
  NodeDirectory large_c = make_population(2000, 19, 32, 32, 7);
  FrozenDirectory fs = small_c.freeze(), fl = large_c.freeze();
  auto ms = compute_metrics(
      multicast(fs.ring(), fs, capacity_fn(fs), fs.ids()[0]));
  auto ml = compute_metrics(
      multicast(fl.ring(), fl, capacity_fn(fl), fl.ids()[0]));
  EXPECT_LT(ml.avg_path_length, ms.avg_path_length);
}

TEST(CamKoordeMulticast, LatencyModelShapesTheTree) {
  // With heterogeneous latencies the flood reaches nodes along the
  // fastest paths; arrival times must be non-decreasing in depth along
  // any branch and every node still gets the message.
  NodeDirectory dir = make_population(300, 16, 4, 10);
  FrozenDirectory f = dir.freeze();
  UniformLatency lat(5, 100, 77);
  MulticastTree tree = multicast(f.ring(), f, capacity_fn(f), f.ids()[0], lat);
  EXPECT_EQ(tree.size(), f.size());
  for (const auto& [node, rec] : tree.entries()) {
    if (node == tree.source()) continue;
    auto parent_rec = tree.record_of(rec.parent);
    ASSERT_TRUE(parent_rec.has_value());
    EXPECT_LT(parent_rec->time, rec.time);
    EXPECT_EQ(parent_rec->depth + 1, rec.depth);
  }
}

}  // namespace
}  // namespace cam::camkoorde
