// SweepPool unit tests: every cell runs exactly once, results land in
// cell order for any jobs count, exceptions propagate (lowest cell
// index wins), and a blocked worker provably has its cells stolen.
#include "runtime/sweep_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace cam::runtime {
namespace {

TEST(EffectiveJobs, ZeroMeansHardwareConcurrency) {
  std::size_t hw = std::thread::hardware_concurrency();
  EXPECT_EQ(effective_jobs(0), hw == 0 ? 1 : hw);
  EXPECT_EQ(effective_jobs(1), 1u);
  EXPECT_EQ(effective_jobs(7), 7u);
}

TEST(SweepPool, RunsEveryCellExactlyOnce) {
  for (std::size_t jobs : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                           std::size_t{16}}) {
    std::vector<std::atomic<int>> hits(37);
    SweepPool pool(jobs);
    pool.run(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "cell " << i << " jobs " << jobs;
    }
  }
}

TEST(SweepPool, ZeroCellsIsANoop) {
  SweepPool pool(4);
  pool.run(0, [](std::size_t) { FAIL() << "no cell should run"; });
}

TEST(SweepPool, MoreJobsThanCellsStillRunsEachOnce) {
  std::vector<std::atomic<int>> hits(3);
  SweepPool pool(16);
  pool.run(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(MapOrdered, ResultsLandInCellOrderForAnyJobs) {
  auto expected = [](std::size_t i) { return i * i + 1; };
  std::vector<std::size_t> serial =
      map_ordered(64, 1, [&](std::size_t i) { return expected(i); });
  for (std::size_t jobs : {std::size_t{2}, std::size_t{4},
                           effective_jobs(0)}) {
    std::vector<std::size_t> parallel =
        map_ordered(64, jobs, [&](std::size_t i) { return expected(i); });
    EXPECT_EQ(parallel, serial) << "jobs " << jobs;
  }
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], expected(i));
  }
}

TEST(MapOrdered, ExceptionOfLowestFailingCellPropagates) {
  // Serial case: the lowest failing cell is simply the first reached.
  EXPECT_THROW(map_ordered(8, 1,
                           [](std::size_t i) -> int {
                             if (i >= 3) throw std::runtime_error(
                                 "cell " + std::to_string(i));
                             return 0;
                           }),
               std::runtime_error);
  // Parallel case: whatever order workers fail in, the reported error
  // is the lowest-indexed failure (best effort, but with every cell
  // failing it must be a failure, never a pass).
  try {
    map_ordered(16, 4, [](std::size_t i) -> int {
      throw std::runtime_error("cell " + std::to_string(i));
    });
    FAIL() << "expected a rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_TRUE(std::string(e.what()).rfind("cell ", 0) == 0) << e.what();
  }
}

TEST(SweepPool, SerialPoolReportsNoSteals) {
  SweepPool pool(1);
  pool.run(10, [](std::size_t) {});
  EXPECT_EQ(pool.steals(), 0u);
}

TEST(SweepPool, BlockedWorkerHasItsCellsStolen) {
  // Two workers, four cells: round-robin seeding gives worker 0 cells
  // {0, 2} and worker 1 cells {1, 3}. Cell 0 blocks worker 0 until every
  // OTHER cell has finished — which is only possible if worker 1 steals
  // cell 2 from worker 0's deque. Deterministic: no timing assumptions,
  // the condition variable forces the schedule even on one core.
  std::mutex mu;
  std::condition_variable cv;
  int others_done = 0;

  SweepPool pool(2);
  pool.run(4, [&](std::size_t i) {
    std::unique_lock<std::mutex> lock(mu);
    if (i == 0) {
      cv.wait(lock, [&] { return others_done == 3; });
    } else {
      ++others_done;
      cv.notify_all();
    }
  });
  EXPECT_GE(pool.steals(), 1u);
}

TEST(MapOrdered, MoveOnlyishResultsViaVectors) {
  auto out = map_ordered(5, 2, [](std::size_t i) {
    return std::vector<int>(i, static_cast<int>(i));
  });
  ASSERT_EQ(out.size(), 5u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].size(), i);
  }
}

}  // namespace
}  // namespace cam::runtime
