// Directed tests of the partition diagnostics and healing APIs
// (overlay/ring_net.h): ring_partitions, isolated_members,
// rejoin_isolated, heal_partitions.
#include <gtest/gtest.h>

#include "camchord/net.h"
#include "util/rng.h"
#include "workload/churn.h"

namespace cam {
namespace {

struct Fixture {
  RingSpace ring{16};
  Simulator sim;
  ConstantLatency lat{1.0};
  Network net{sim, lat};
  camchord::CamChordNet overlay{ring, net};
  Rng rng{5};

  void grow(std::size_t n) {
    overlay.bootstrap(rng.next_below(ring.size()),
                      {.capacity = 4, .bandwidth_kbps = 500});
    workload::join_random(overlay, n - 1, 4, 10, 400, 1000, rng);
    overlay.converge();
  }
};

TEST(RingPartitions, HealthyOverlayIsOneRing) {
  Fixture fx;
  fx.grow(40);
  auto parts = fx.overlay.ring_partitions();
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].size(), fx.overlay.size());
  EXPECT_TRUE(fx.overlay.isolated_members().empty());
}

TEST(RingPartitions, SingletonIsItsOwnRing) {
  Fixture fx;
  fx.overlay.bootstrap(7, {.capacity = 4, .bandwidth_kbps = 1});
  auto parts = fx.overlay.ring_partitions();
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], std::vector<Id>{7});
  // A lone node is not "isolated" — there is nobody to be cut off from.
  EXPECT_TRUE(fx.overlay.isolated_members().empty());
}

TEST(RingPartitions, SecondRingGrownFromSeparateBootstrapIsDetected) {
  Fixture fx;
  fx.grow(30);
  // A second, disjoint universe: bootstrap + joins only via its members.
  Id island0 = 0;
  while (fx.overlay.contains(island0)) ++island0;
  fx.overlay.bootstrap(island0, {.capacity = 4, .bandwidth_kbps = 500});
  Id cursor = island0;
  for (int i = 0; i < 5; ++i) {
    Id id = fx.rng.next_below(fx.ring.size());
    if (fx.overlay.contains(id)) continue;
    ASSERT_TRUE(
        fx.overlay.join(id, {.capacity = 4, .bandwidth_kbps = 500}, cursor));
    cursor = id;
  }
  fx.overlay.stabilize_all();
  fx.overlay.stabilize_all();

  auto parts = fx.overlay.ring_partitions();
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_GT(parts[0].size(), parts[1].size());  // largest first

  // Heal through a member of the big ring, then converge: one ring.
  Id trusted = parts[0].front();
  auto rejoined = fx.overlay.heal_partitions(trusted);
  EXPECT_EQ(rejoined.size(), parts[1].size());
  fx.overlay.converge();
  EXPECT_EQ(fx.overlay.ring_partitions().size(), 1u);
}

TEST(RingPartitions, IsolatedMemberDetectedAndRejoined) {
  Fixture fx;
  fx.grow(30);
  // Manufacture isolation: fail everything a victim points at is hard to
  // arrange directly, so go the honest way — a fresh bootstrap node that
  // never joined anyone is exactly an island.
  Id island = 1;
  while (fx.overlay.contains(island)) ++island;
  fx.overlay.bootstrap(island, {.capacity = 4, .bandwidth_kbps = 500});
  auto isolated = fx.overlay.isolated_members();
  ASSERT_EQ(isolated.size(), 1u);
  EXPECT_EQ(isolated[0], island);

  auto members = fx.overlay.members_sorted();
  Id via = members[0] == island ? members[1] : members[0];
  auto rejoined = fx.overlay.rejoin_isolated(via);
  ASSERT_EQ(rejoined.size(), 1u);
  fx.overlay.converge();
  EXPECT_TRUE(fx.overlay.isolated_members().empty());
  EXPECT_EQ(fx.overlay.ring_partitions().size(), 1u);
}

TEST(RingPartitions, HealWithDeadTrustedContactIsANoop) {
  Fixture fx;
  fx.grow(20);
  Id ghost = 0;
  while (fx.overlay.contains(ghost)) ++ghost;
  EXPECT_TRUE(fx.overlay.heal_partitions(ghost).empty());
}

}  // namespace
}  // namespace cam
