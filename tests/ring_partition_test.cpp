// Directed tests of the partition diagnostics and healing APIs
// (overlay/ring_net.h): ring_partitions, isolated_members,
// rejoin_isolated, heal_partitions — plus async-mode partition/heal
// through the fault injector's network-cut primitive (src/fault).
#include <gtest/gtest.h>

#include <algorithm>

#include "camchord/net.h"
#include "fault/injector.h"
#include "fault/invariants.h"
#include "proto/async_camchord.h"
#include "util/rng.h"
#include "workload/churn.h"

namespace cam {
namespace {

struct Fixture {
  RingSpace ring{16};
  Simulator sim;
  ConstantLatency lat{1.0};
  Network net{sim, lat};
  camchord::CamChordNet overlay{ring, net};
  Rng rng{5};

  void grow(std::size_t n) {
    overlay.bootstrap(rng.next_below(ring.size()),
                      {.capacity = 4, .bandwidth_kbps = 500});
    workload::join_random(overlay, n - 1, 4, 10, 400, 1000, rng);
    overlay.converge();
  }
};

TEST(RingPartitions, HealthyOverlayIsOneRing) {
  Fixture fx;
  fx.grow(40);
  auto parts = fx.overlay.ring_partitions();
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].size(), fx.overlay.size());
  EXPECT_TRUE(fx.overlay.isolated_members().empty());
}

TEST(RingPartitions, SingletonIsItsOwnRing) {
  Fixture fx;
  fx.overlay.bootstrap(7, {.capacity = 4, .bandwidth_kbps = 1});
  auto parts = fx.overlay.ring_partitions();
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], std::vector<Id>{7});
  // A lone node is not "isolated" — there is nobody to be cut off from.
  EXPECT_TRUE(fx.overlay.isolated_members().empty());
}

TEST(RingPartitions, SecondRingGrownFromSeparateBootstrapIsDetected) {
  Fixture fx;
  fx.grow(30);
  // A second, disjoint universe: bootstrap + joins only via its members.
  Id island0 = 0;
  while (fx.overlay.contains(island0)) ++island0;
  fx.overlay.bootstrap(island0, {.capacity = 4, .bandwidth_kbps = 500});
  Id cursor = island0;
  for (int i = 0; i < 5; ++i) {
    Id id = fx.rng.next_below(fx.ring.size());
    if (fx.overlay.contains(id)) continue;
    ASSERT_TRUE(
        fx.overlay.join(id, {.capacity = 4, .bandwidth_kbps = 500}, cursor));
    cursor = id;
  }
  fx.overlay.stabilize_all();
  fx.overlay.stabilize_all();

  auto parts = fx.overlay.ring_partitions();
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_GT(parts[0].size(), parts[1].size());  // largest first

  // Heal through a member of the big ring, then converge: one ring.
  Id trusted = parts[0].front();
  auto rejoined = fx.overlay.heal_partitions(trusted);
  EXPECT_EQ(rejoined.size(), parts[1].size());
  fx.overlay.converge();
  EXPECT_EQ(fx.overlay.ring_partitions().size(), 1u);
}

TEST(RingPartitions, IsolatedMemberDetectedAndRejoined) {
  Fixture fx;
  fx.grow(30);
  // Manufacture isolation: fail everything a victim points at is hard to
  // arrange directly, so go the honest way — a fresh bootstrap node that
  // never joined anyone is exactly an island.
  Id island = 1;
  while (fx.overlay.contains(island)) ++island;
  fx.overlay.bootstrap(island, {.capacity = 4, .bandwidth_kbps = 500});
  auto isolated = fx.overlay.isolated_members();
  ASSERT_EQ(isolated.size(), 1u);
  EXPECT_EQ(isolated[0], island);

  auto members = fx.overlay.members_sorted();
  Id via = members[0] == island ? members[1] : members[0];
  auto rejoined = fx.overlay.rejoin_isolated(via);
  ASSERT_EQ(rejoined.size(), 1u);
  fx.overlay.converge();
  EXPECT_TRUE(fx.overlay.isolated_members().empty());
  EXPECT_EQ(fx.overlay.ring_partitions().size(), 1u);
}

TEST(RingPartitions, HealWithDeadTrustedContactIsANoop) {
  Fixture fx;
  fx.grow(20);
  Id ghost = 0;
  while (fx.overlay.contains(ghost)) ++ghost;
  EXPECT_TRUE(fx.overlay.heal_partitions(ghost).empty());
}

// --- async mode: partitions injected at the network layer ---------------

struct AsyncFixture {
  RingSpace ring{10};
  Simulator sim;
  UniformLatency lat{5, 25, 21};
  Network net{sim, lat};
  proto::HostBus bus{net};
  proto::AsyncCamChordNet overlay{ring, bus};
  Rng rng{13};

  void grow(std::size_t n) {
    auto info = [&] {
      return NodeInfo{static_cast<std::uint32_t>(rng.uniform(4, 8)),
                      400 + rng.next_double() * 600};
    };
    overlay.bootstrap(rng.next_below(ring.size()), info());
    overlay.run_for(500);
    while (overlay.size() < n) {
      Id id = rng.next_below(ring.size());
      if (overlay.known(id)) continue;
      auto members = overlay.members_sorted();
      overlay.spawn(id, info(), members[rng.next_below(members.size())]);
      overlay.run_for(300);
    }
    while (overlay.ring_consistency() < 1.0) overlay.run_for(2'000);
    overlay.run_for(30'000);  // table refresh
  }
};

TEST(RingPartitions, AsyncPartitionConfinesMulticastToSourceSide) {
  AsyncFixture fx;
  fx.grow(14);
  fault::FaultInjector injector(fx.overlay, 99);

  auto members = fx.overlay.members_sorted();
  std::vector<Id> side_a(members.begin(), members.begin() + 6);
  injector.partition_hosts(side_a);
  ASSERT_TRUE(injector.partitioned());
  fx.overlay.run_for(30'000);  // both sides repair their own rings

  Id source = side_a[2];
  MulticastTree tree = fx.overlay.multicast(source);
  // Delivery is confined to side A: nothing crosses the cut, and after
  // repair time side A's 6 hosts form their own consistent ring, so the
  // delivery ratio within the source side is 1.
  EXPECT_EQ(tree.size(), side_a.size());
  for (Id id : side_a) {
    EXPECT_TRUE(tree.delivered(id)) << "side-A host " << id << " missed";
  }
  for (Id id : members) {
    bool in_a = std::find(side_a.begin(), side_a.end(), id) != side_a.end();
    if (!in_a) {
      EXPECT_FALSE(tree.delivered(id)) << "message crossed the cut to " << id;
    }
  }
}

TEST(RingPartitions, AsyncHealRemergesAndRestoresInvariants) {
  AsyncFixture fx;
  fx.grow(14);
  fault::FaultInjector injector(fx.overlay, 99);
  fault::InvariantChecker checker(fx.overlay);

  // The window is long enough for cross-cut successors to be dropped
  // (strike-based suspicion fires within ~2s) but shorter than a full
  // finger-refresh cycle: stale cross-side table entries must survive,
  // because they are the only bridge stabilization can re-merge over —
  // two fully separated stable rings would never find each other again.
  injector.partition_fraction(0.4);
  fx.overlay.run_for(4'000);
  EXPECT_LT(fx.overlay.ring_consistency(), 1.0);
  EXPECT_FALSE(checker.check_ring().empty());

  injector.heal();
  ASSERT_FALSE(injector.partitioned());
  // Suspicions from the partition must expire and stabilization re-merge
  // the two rings into one.
  SimTime deadline = fx.sim.now() + 240'000;
  while (fx.sim.now() < deadline && !checker.check_quiescent().empty()) {
    fx.overlay.run_for(5'000);
  }
  EXPECT_TRUE(checker.check_quiescent().empty())
      << fault::render_violations(checker.check_quiescent());

  // Full coverage again after the re-merge.
  auto members = fx.overlay.members_sorted();
  MulticastTree tree = fx.overlay.multicast(members[0]);
  EXPECT_EQ(tree.size(), fx.overlay.size());
  EXPECT_TRUE(checker.check_multicast_coverage(tree).empty());
}

}  // namespace
}  // namespace cam
