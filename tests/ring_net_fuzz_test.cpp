// Randomized churn fuzzing of the protocol-mode overlays: interleaved
// joins, graceful leaves, abrupt failures, and partial maintenance, with
// invariants checked mid-flight (weak) and after convergence (strong).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "camchord/net.h"
#include "camkoorde/net.h"
#include "multicast/metrics.h"
#include "util/rng.h"

namespace cam {
namespace {

enum class Sys { kCamChord, kCamKoorde };

struct FuzzParam {
  Sys sys;
  std::uint64_t seed;
  std::uint32_t cap_lo, cap_hi;
};

class RingNetFuzz : public ::testing::TestWithParam<FuzzParam> {};

std::unique_ptr<RingOverlayNet> make_net(Sys sys, RingSpace ring,
                                         Network& net) {
  if (sys == Sys::kCamChord) {
    return std::make_unique<camchord::CamChordNet>(ring, net);
  }
  return std::make_unique<camkoorde::CamKoordeNet>(ring, net);
}

TEST_P(RingNetFuzz, InvariantsSurviveRandomChurn) {
  const FuzzParam p = GetParam();
  RingSpace ring(16);
  Simulator sim;
  ConstantLatency lat(1.0);
  Network net(sim, lat);
  auto overlay = make_net(p.sys, ring, net);
  Rng rng(p.seed);

  auto info = [&] {
    return NodeInfo{static_cast<std::uint32_t>(rng.uniform(p.cap_lo, p.cap_hi)),
                    400 + rng.next_double() * 600};
  };

  overlay->bootstrap(rng.next_below(ring.size()), info());
  // Seed membership.
  while (overlay->size() < 60) {
    Id id = rng.next_below(ring.size());
    if (overlay->contains(id)) continue;
    auto members = overlay->members_sorted();
    (void)overlay->join(id, info(), members[rng.next_below(members.size())]);
    if (overlay->size() % 6 == 0) overlay->stabilize_all();
  }
  overlay->converge();

  // 120 random operations with occasional maintenance.
  for (int op = 0; op < 120; ++op) {
    auto members = overlay->members_sorted();
    double dice = rng.next_double();
    if (dice < 0.40) {  // join
      Id id = rng.next_below(ring.size());
      if (!overlay->contains(id)) {
        (void)overlay->join(id, info(),
                            members[rng.next_below(members.size())]);
      }
    } else if (dice < 0.60 && overlay->size() > 20) {  // graceful leave
      overlay->leave(members[rng.next_below(members.size())]);
    } else if (dice < 0.75 && overlay->size() > 20) {  // abrupt failure
      overlay->fail(members[rng.next_below(members.size())]);
    } else if (dice < 0.95) {  // partial maintenance
      overlay->stabilize_all();
    } else {  // weak mid-flight invariants on a multicast
      Id source = members[rng.next_below(members.size())];
      if (overlay->contains(source)) {
        MulticastTree tree = overlay->multicast(source);
        EXPECT_LE(tree.size(), overlay->size());
        EXPECT_EQ(capacity_violations(
                      tree,
                      [&](Id x) { return overlay->info(x).capacity; }),
                  0u);
      }
    }
  }

  // Nodes cut off from the main ring (dead contacts, or joins served by
  // a node that was itself cut off) need the out-of-band bootstrap
  // path — periodic reconciliation against a trusted contact, like any
  // deployed DHT.
  auto partitions = overlay->ring_partitions();
  ASSERT_FALSE(partitions.empty());
  if (partitions.size() > 1) {
    overlay->heal_partitions(partitions.front().front());
  }

  // Strong invariants after convergence.
  int rounds = overlay->converge(128);
  EXPECT_LE(rounds, 128) << "did not converge";
  EXPECT_TRUE(overlay->isolated_members().empty());
  EXPECT_EQ(overlay->ring_partitions().size(), 1u);

  NodeDirectory truth(ring);
  for (Id id : overlay->members_sorted()) truth.add(id, overlay->info(id));
  for (Id id : overlay->members_sorted()) {
    ASSERT_EQ(overlay->successor(id), *truth.successor_of(id)) << id;
  }
  for (int t = 0; t < 60; ++t) {
    Id from = truth.random_node(rng);
    Id k = rng.next_below(ring.size());
    LookupResult r = overlay->lookup(from, k);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.owner, *truth.responsible(k)) << "from=" << from << " k=" << k;
  }
  Id source = truth.random_node(rng);
  MulticastTree tree = overlay->multicast(source);
  EXPECT_EQ(tree.size(), overlay->size());
  EXPECT_EQ(tree.duplicate_deliveries(), 0u);
}

std::vector<FuzzParam> fuzz_params() {
  std::vector<FuzzParam> out;
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    out.push_back({Sys::kCamChord, seed, 4, 10});
    out.push_back({Sys::kCamKoorde, seed, 4, 10});
  }
  out.push_back({Sys::kCamChord, 6, 2, 3});   // minimum CAM-Chord capacity
  out.push_back({Sys::kCamChord, 7, 20, 40});
  out.push_back({Sys::kCamKoorde, 8, 4, 4});  // minimum CAM-Koorde capacity
  out.push_back({Sys::kCamKoorde, 9, 20, 40});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Churn, RingNetFuzz,
                         ::testing::ValuesIn(fuzz_params()),
                         [](const auto& info) {
                           const FuzzParam& p = info.param;
                           return std::string(p.sys == Sys::kCamChord
                                                  ? "CamChord"
                                                  : "CamKoorde") +
                                  "seed" + std::to_string(p.seed) + "c" +
                                  std::to_string(p.cap_lo) + "to" +
                                  std::to_string(p.cap_hi);
                         });

}  // namespace
}  // namespace cam
