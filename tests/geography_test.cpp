#include "workload/geography.h"

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <unordered_map>

#include "camchord/oracle.h"
#include "test_util.h"

namespace cam::workload {
namespace {

TEST(Geography, GeoIdsCarryTheirRegionInTopBits) {
  GeoSpec spec;
  spec.base.n = 500;
  spec.base.ring_bits = 16;
  spec.region_bits = 3;
  NodeDirectory dir = geographic_population(spec, 4, 10);
  EXPECT_EQ(dir.size(), 500u);
  // Regions are populated roughly evenly.
  std::array<int, 8> count{};
  for (Id id : dir.sorted_ids()) {
    auto r = region_of_geo_id(dir.ring(), id, 3);
    ASSERT_LT(r, 8u);
    ++count[r];
  }
  for (int c : count) EXPECT_GT(c, 30);
}

TEST(Geography, RandomRegionIsDeterministicAndBounded) {
  for (Id id : {0u, 17u, 65535u}) {
    auto r1 = region_of_random_id(id, 3, 9);
    auto r2 = region_of_random_id(id, 3, 9);
    EXPECT_EQ(r1, r2);
    EXPECT_LT(r1, 8u);
    EXPECT_NE(region_of_random_id(id, 3, 9),
              region_of_random_id(id + 1, 3, 9) ^ 0xFF00u);  // in range
  }
}

TEST(Geography, RegionLatencyTiersAndSymmetry) {
  RingSpace ring(16);
  RegionLatency lat(ring, 3, /*geographic=*/true, 10, 80, 5);
  // Same top-3-bits region: intra tier.
  Id a = 0x1000, b = 0x1F00;  // both region 0
  EXPECT_LT(lat.latency(a, b), 10 * 1.2 + 1e-9);
  EXPECT_GE(lat.latency(a, b), 10.0);
  EXPECT_DOUBLE_EQ(lat.latency(a, b), lat.latency(b, a));
  // Different regions: inter tier.
  Id c = 0xE000;  // region 7
  EXPECT_GE(lat.latency(a, c), 80.0);
}

TEST(Geography, GeographicLayoutCutsMulticastLatency) {
  const int kRegionBits = 3;
  GeoSpec gspec;
  gspec.base.n = 1500;
  gspec.base.ring_bits = 16;
  gspec.base.seed = 21;
  gspec.region_bits = kRegionBits;

  auto mean_delivery = [&](const FrozenDirectory& dir, bool geo) {
    RegionLatency lat(dir.ring(), kRegionBits, geo, 10, 80, 21);
    auto cap = [&dir](Id x) { return dir.info(x).capacity; };
    MulticastTree tree =
        camchord::multicast(dir.ring(), dir, cap, dir.ids()[0]);
    // Arrival time = sum of edge latencies along the parent chain.
    std::unordered_map<Id, double> arrive;
    arrive[tree.source()] = 0;
    std::function<double(Id)> time_of = [&](Id x) -> double {
      auto it = arrive.find(x);
      if (it != arrive.end()) return it->second;
      Id p = tree.record_of(x)->parent;
      return arrive[x] = time_of(p) + lat.latency(p, x);
    };
    double total = 0;
    for (const auto& [node, rec] : tree.entries()) {
      if (node != tree.source()) total += time_of(node);
    }
    return total / static_cast<double>(tree.size() - 1);
  };

  FrozenDirectory geo_dir = geographic_population(gspec, 4, 10).freeze();
  FrozenDirectory rnd_dir =
      uniform_capacity_population(gspec.base, 4, 10).freeze();
  double geo_ms = mean_delivery(geo_dir, true);
  double rnd_ms = mean_delivery(rnd_dir, false);
  EXPECT_LT(geo_ms, rnd_ms);
}

TEST(Geography, RejectsBadParameters) {
  GeoSpec spec;
  spec.base.n = 10;
  spec.base.ring_bits = 8;
  spec.region_bits = 8;  // must be < ring bits
  EXPECT_THROW(geographic_population(spec, 4, 10), std::invalid_argument);
  spec.region_bits = 2;
  EXPECT_THROW(geographic_population(spec, 10, 4), std::invalid_argument);
}

}  // namespace
}  // namespace cam::workload
