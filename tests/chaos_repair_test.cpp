// Negative + positive chaos tests for the delivery-repair layer: a
// crash wave while a multicast is in flight orphans delegated regions.
// With repair OFF the eventual-delivery invariant must flag surviving
// members that never got the stream (the checker detects real loss);
// with repair ON (orphan re-delegation + anti-entropy pulls) every
// run must come out fully clean — eventual delivery, exactly-once,
// ring and table invariants all holding.
//
// Seeds sweep 1..32 per system. CAM-Chord orphans regions readily
// (each delegated subtree hangs off one datagram chain), so a light
// wave suffices; CAM-Koorde's flooding has redundant in-edges, so its
// wave is heavier (more loss + a bigger crash batch) to reliably
// produce holes. The per-batch assertion is an aggregate — ≥2 of 8
// seeds flagged — because some seeds legitimately crash no forwarder
// mid-flight (observed minimum across all batches is 4).
#include <gtest/gtest.h>

#include <string>

#include "fault/chaos_run.h"

namespace cam::fault {
namespace {

ChaosConfig wave_cfg(const std::string& system, std::uint64_t seed) {
  ChaosConfig cfg;
  cfg.system = system;
  cfg.n = 12;
  cfg.bits = 10;
  cfg.seed = seed;
  cfg.mid_multicasts = 1;
  return cfg;
}

FaultPlan wave_plan(const std::string& system) {
  FaultPlan plan;
  if (system == "camchord") {
    plan.drop(0, 0.05).crash(1'000, 4).clear(6'000);
  } else {
    plan.drop(0, 0.15).crash(1'000, 6).clear(6'000);
  }
  return plan;
}

bool flags_eventual(const ChaosReport& r) {
  for (const Violation& v : r.violations) {
    if (v.check == "mcast.eventual") return true;
  }
  return false;
}

// Runs seeds [lo, hi] for one system, repair off and on from the same
// (seed, plan). Repair-on must be spotless every time; repair-off must
// flag lost regions on at least two seeds per batch.
void run_batch(const std::string& system, std::uint64_t lo,
               std::uint64_t hi) {
  const FaultPlan plan = wave_plan(system);
  int flagged = 0;
  for (std::uint64_t seed = lo; seed <= hi; ++seed) {
    ChaosConfig cfg = wave_cfg(system, seed);

    cfg.async.repair = false;
    ChaosReport off = run_chaos(cfg, plan);
    if (flags_eventual(off)) ++flagged;
    // Repair off may lose regions, but never deliver twice.
    for (const Violation& v : off.violations) {
      EXPECT_NE(v.check, "mcast.exactly_once")
          << system << " seed " << seed << ": " << v.to_string();
    }

    cfg.async.repair = true;
    ChaosReport on = run_chaos(cfg, plan);
    EXPECT_TRUE(on.ok) << system << " seed " << seed
                       << " (repair on):\n"
                       << render_violations(on.violations);
    for (const ChaosMulticast& m : on.multicasts) {
      if (m.eligible > 0) {
        EXPECT_DOUBLE_EQ(m.eventual_ratio(), 1.0)
            << system << " seed " << seed << ": " << m.to_string();
      }
    }
  }
  EXPECT_GE(flagged, 2)
      << system << " seeds " << lo << ".." << hi
      << ": repair-off crash waves should orphan regions on most seeds";
}

TEST(ChaosRepair, CamChordSeeds1to8) { run_batch("camchord", 1, 8); }
TEST(ChaosRepair, CamChordSeeds9to16) { run_batch("camchord", 9, 16); }
TEST(ChaosRepair, CamChordSeeds17to24) { run_batch("camchord", 17, 24); }
TEST(ChaosRepair, CamChordSeeds25to32) { run_batch("camchord", 25, 32); }
TEST(ChaosRepair, CamKoordeSeeds1to8) { run_batch("camkoorde", 1, 8); }
TEST(ChaosRepair, CamKoordeSeeds9to16) { run_batch("camkoorde", 9, 16); }
TEST(ChaosRepair, CamKoordeSeeds17to24) { run_batch("camkoorde", 17, 24); }
TEST(ChaosRepair, CamKoordeSeeds25to32) { run_batch("camkoorde", 25, 32); }

// One pinned seed as a readable spot check: the same crash wave loses
// a region without repair and recovers it with repair.
TEST(ChaosRepair, KnownSeedLosesRegionWithoutRepair) {
  ChaosConfig cfg = wave_cfg("camchord", 6);
  const FaultPlan plan = wave_plan("camchord");

  cfg.async.repair = false;
  ChaosReport off = run_chaos(cfg, plan);
  ASSERT_TRUE(flags_eventual(off));
  ASSERT_FALSE(off.multicasts.empty());
  EXPECT_LT(off.multicasts.front().eventual_ratio(), 1.0);

  cfg.async.repair = true;
  ChaosReport on = run_chaos(cfg, plan);
  EXPECT_TRUE(on.ok) << render_violations(on.violations);
  ASSERT_FALSE(on.multicasts.empty());
  EXPECT_DOUBLE_EQ(on.multicasts.front().eventual_ratio(), 1.0);
}

// Acceptance: the repair layer keeps the whole run deterministic — the
// rendered report (violations, journal, repair counters, trace totals)
// is byte-identical across reruns of the same (config, plan).
TEST(ChaosRepair, DeterminismSameSeedIdenticalReport) {
  for (const char* system : {"camchord", "camkoorde"}) {
    ChaosConfig cfg = wave_cfg(system, 21);
    const FaultPlan plan = wave_plan(system);
    ChaosReport a = run_chaos(cfg, plan);
    ChaosReport b = run_chaos(cfg, plan);
    EXPECT_EQ(a.render(), b.render()) << system;
  }
}

}  // namespace
}  // namespace cam::fault
