// Reliable multicast delivery over a lossy network: link-level
// acknowledgements + bounded retransmission (the paper's Section 1
// motivates reliable delivery as the regime where the weakest node
// dictates throughput).
#include <gtest/gtest.h>

#include "proto/async_camchord.h"
#include "proto/async_camkoorde.h"
#include "util/rng.h"

namespace cam::proto {
namespace {

template <typename Net>
struct Fixture {
  RingSpace ring{16};
  Simulator sim;
  UniformLatency lat{5, 25, 17};
  Network net{sim, lat};
  HostBus bus{net};
  AsyncConfig cfg;
  Net overlay;
  Rng rng{31};

  explicit Fixture(int retries, bool repair = true)
      : cfg{}, overlay{ring, bus, make_cfg(retries, repair)} {}

  static AsyncConfig make_cfg(int retries, bool repair) {
    AsyncConfig c;
    c.multicast_retries = retries;
    c.repair = repair;
    return c;
  }

  NodeInfo info() {
    return NodeInfo{static_cast<std::uint32_t>(rng.uniform(4, 10)),
                    400 + rng.next_double() * 600};
  }

  void grow(std::size_t n) {
    Id first = rng.next_below(ring.size());
    overlay.bootstrap(first, info());
    overlay.run_for(500);
    while (overlay.size() < n) {
      Id id = rng.next_below(ring.size());
      if (overlay.running(id)) continue;
      auto members = overlay.members_sorted();
      overlay.spawn(id, info(), members[rng.next_below(members.size())]);
      overlay.run_for(300);
    }
    SimTime deadline = sim.now() + 240'000;
    while (sim.now() < deadline && overlay.ring_consistency() < 1.0) {
      overlay.run_for(2'000);
    }
    overlay.run_for(60'000);  // entry refresh
  }
};

TEST(AsyncReliability, RetransmissionsDeliverThroughLoss) {
  Fixture<AsyncCamChordNet> fx(/*retries=*/4);
  fx.grow(40);
  fx.bus.set_loss(0.05, 4242);  // lossy from now on
  Id source = fx.overlay.members_sorted()[3];
  MulticastTree tree = fx.overlay.multicast(source);
  EXPECT_EQ(tree.size(), fx.overlay.size());
}

TEST(AsyncReliability, FireAndForgetDropsUnderLoss) {
  // Repair off: this test asserts the *unrepaired* loss floor, which the
  // anti-entropy layer would otherwise fill during the quiesce window.
  Fixture<AsyncCamChordNet> fx(/*retries=*/0, /*repair=*/false);
  fx.grow(40);
  fx.bus.set_loss(0.10, 4242);
  Id source = fx.overlay.members_sorted()[3];
  MulticastTree tree = fx.overlay.multicast(source);
  // A lost datagram loses the whole delegated region; with 10% loss over
  // dozens of links at least one region disappears (probability of a
  // clean run is negligible).
  EXPECT_LT(tree.size(), fx.overlay.size());
}

TEST(AsyncReliability, FloodingPlusRetransmissionsSurviveLoss) {
  Fixture<AsyncCamKoordeNet> fx(/*retries=*/4);
  fx.grow(40);
  fx.bus.set_loss(0.05, 99);
  Id source = fx.overlay.members_sorted()[5];
  MulticastTree tree = fx.overlay.multicast(source);
  // Flooding has redundant in-edges on top of per-link retries; a lost
  // dup-check just suppresses one edge.
  EXPECT_GE(tree.size(), fx.overlay.size() - 1);
}

TEST(AsyncReliability, RetriesDoNotDuplicateDeliveries) {
  Fixture<AsyncCamChordNet> fx(/*retries=*/4);
  fx.grow(30);
  fx.bus.set_loss(0.10, 7);  // plenty of lost ACKs -> retransmissions
  Id source = fx.overlay.members_sorted()[0];
  MulticastTree tree = fx.overlay.multicast(source);
  // A lost ACK retransmits an already-delivered payload; the stream
  // dedupe must absorb it without re-forwarding (duplicates counted at
  // the tree are allowed, duplicate *subtrees* are not — every node has
  // exactly one parent).
  for (const auto& [node, rec] : tree.entries()) {
    if (node == tree.source()) continue;
    EXPECT_TRUE(tree.delivered(rec.parent));
  }
}

}  // namespace
}  // namespace cam::proto
