// Exhaustive small-world session test: enumerate EVERY join/leave
// interleaving over tiny worlds (up to 4 groups × 6 nodes) by DFS and
// require the full SessionLayer consistency check — per-group tree
// structure, ledger agreement, no oversubscription — to hold after
// every single step of every sequence. The state space is small enough
// to cover completely, so this is the ground-truth companion to the
// randomized chaos sweep: any ordering bug in join placement,
// re-parenting, or ledger credit/debit shows up here with the exact
// minimal op sequence as the failure message.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "session/session.h"
#include "strategy/strategy.h"
#include "workload/population.h"

namespace cam {
namespace {

using session::GroupId;
using session::SessionLayer;

struct Op {
  bool join = true;  // false = leave
  GroupId group = 0;
  std::size_t node = 0;  // index into dir.ids()
};

std::string describe(const std::vector<Op>& seq) {
  std::string out;
  for (const Op& op : seq) {
    out += op.join ? "join(" : "leave(";
    out += std::to_string(op.group) + "," + std::to_string(op.node) + ") ";
  }
  return out;
}

class Enumerator {
 public:
  Enumerator(std::size_t groups, std::size_t nodes, std::uint32_t cap_lo,
             std::uint32_t cap_hi, const strategy::MulticastStrategy& strat)
      : groups_(groups),
        nodes_(nodes),
        strat_(&strat),
        dir_(make_world(nodes, cap_lo, cap_hi)) {}

  void run(std::size_t depth) {
    std::vector<Op> seq;
    dfs(seq, depth);
  }

  std::size_t sequences() const { return sequences_; }

 private:
  static FrozenDirectory make_world(std::size_t nodes, std::uint32_t cap_lo,
                                    std::uint32_t cap_hi) {
    workload::PopulationSpec spec;
    spec.n = nodes;
    spec.ring_bits = 12;
    spec.seed = 2;
    return workload::uniform_capacity_population(spec, cap_lo, cap_hi)
        .freeze();
  }

  /// Replays `seq` on a fresh layer, checking consistency after every
  /// op (including the group-creation preamble). Returns the layer.
  std::unique_ptr<SessionLayer> replay(const std::vector<Op>& seq) {
    auto layer = std::make_unique<SessionLayer>(dir_, *strat_);
    const std::vector<Id>& ids = dir_.ids();
    for (std::size_t g = 1; g <= groups_; ++g) {
      EXPECT_TRUE(layer->create_group(g, ids[0]));
    }
    {
      const std::vector<std::string> defects = layer->check();
      EXPECT_TRUE(defects.empty())
          << "after preamble: " << defects.front();
    }
    for (std::size_t i = 0; i < seq.size(); ++i) {
      const Op& op = seq[i];
      if (op.join) {
        layer->join(op.group, ids[op.node]);
      } else {
        layer->leave(op.group, ids[op.node]);
      }
      const std::vector<std::string> defects = layer->check();
      if (!defects.empty()) {
        ADD_FAILURE() << "after step " << i << " of ["
                      << describe(seq) << "]: " << defects.front()
                      << " (+" << defects.size() - 1 << " more)";
        return layer;
      }
    }
    ++sequences_;
    return layer;
  }

  void dfs(std::vector<Op>& seq, std::size_t depth_left) {
    const std::unique_ptr<SessionLayer> layer = replay(seq);
    if (depth_left == 0 || ::testing::Test::HasFailure()) return;
    const std::vector<Id>& ids = dir_.ids();
    // One valid op per (group, node) pair: join when outside the group,
    // leave when inside — the complete move set from this state.
    for (GroupId g = 1; g <= groups_; ++g) {
      for (std::size_t n = 1; n < nodes_; ++n) {
        const GroupTreeMembership in =
            layer->group(g) != nullptr && layer->group(g)->contains(ids[n])
                ? GroupTreeMembership::kMember
                : GroupTreeMembership::kOutside;
        seq.push_back(Op{in == GroupTreeMembership::kOutside, g, n});
        dfs(seq, depth_left - 1);
        seq.pop_back();
        if (::testing::Test::HasFailure()) return;
      }
    }
  }

  enum class GroupTreeMembership { kMember, kOutside };

  std::size_t groups_;
  std::size_t nodes_;
  const strategy::MulticastStrategy* strat_;
  FrozenDirectory dir_;
  std::size_t sequences_ = 0;
};

TEST(SessionExhaustive, TwoGroupsFourNodesDepthFive) {
  // 6 valid moves per state, depth 5: every interleaving of joins and
  // leaves across two groups sharing four nodes.
  Enumerator e(2, 4, 4, 6, strategy::registry().make("camchord"));
  e.run(5);
  EXPECT_GT(e.sequences(), 5000u);
}

TEST(SessionExhaustive, ThreeGroupsThreeNodesDepthFour) {
  // Deliberately tight capacities (c_x = 4 everywhere, three groups
  // contending): join rejections and re-parenting both occur inside the
  // enumeration, and consistency must survive them.
  Enumerator e(3, 3, 4, 4, strategy::registry().make("camkoorde"));
  e.run(4);
  EXPECT_GT(e.sequences(), 1000u);
}

TEST(SessionExhaustive, FourGroupsSixNodesDepthThree) {
  // Widest world: 20 valid moves per state. Capacity 4 with up to four
  // groups debiting the same six uplinks saturates the shared ledger,
  // so the capacity-rejection path is enumerated too.
  Enumerator e(4, 6, 4, 4, strategy::registry().make("camchord"));
  e.run(3);
  EXPECT_GT(e.sequences(), 8000u);
}

}  // namespace
}  // namespace cam
