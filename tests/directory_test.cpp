#include "overlay/directory.h"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"

namespace cam {
namespace {

TEST(NodeDirectory, AddRemoveContains) {
  NodeDirectory dir{RingSpace(5)};
  EXPECT_TRUE(dir.empty());
  EXPECT_TRUE(dir.add(3, {.capacity = 4, .bandwidth_kbps = 500}));
  EXPECT_FALSE(dir.add(3, {.capacity = 9, .bandwidth_kbps = 900}));
  EXPECT_TRUE(dir.contains(3));
  EXPECT_EQ(dir.info(3).capacity, 4u);  // first add wins
  EXPECT_TRUE(dir.remove(3));
  EXPECT_FALSE(dir.remove(3));
  EXPECT_TRUE(dir.empty());
}

TEST(NodeDirectory, ResponsibleWrapsAroundRing) {
  NodeDirectory dir{RingSpace(5)};
  dir.add(5, {});
  dir.add(20, {});
  EXPECT_EQ(dir.responsible(5), 5u);
  EXPECT_EQ(dir.responsible(6), 20u);
  EXPECT_EQ(dir.responsible(20), 20u);
  EXPECT_EQ(dir.responsible(21), 5u);  // wraps past N-1
  EXPECT_EQ(dir.responsible(0), 5u);
}

TEST(NodeDirectory, SuccessorIsStrictlyAfter) {
  NodeDirectory dir{RingSpace(5)};
  dir.add(5, {});
  dir.add(20, {});
  EXPECT_EQ(dir.successor_of(5), 20u);
  EXPECT_EQ(dir.successor_of(20), 5u);
  EXPECT_EQ(dir.successor_of(6), 20u);
}

TEST(NodeDirectory, PredecessorIsStrictlyBefore) {
  NodeDirectory dir{RingSpace(5)};
  dir.add(5, {});
  dir.add(20, {});
  EXPECT_EQ(dir.predecessor_of(5), 20u);
  EXPECT_EQ(dir.predecessor_of(20), 5u);
  EXPECT_EQ(dir.predecessor_of(21), 20u);
  EXPECT_EQ(dir.predecessor_of(0), 20u);
}

TEST(NodeDirectory, SingleNodeIsItsOwnNeighborhood) {
  NodeDirectory dir{RingSpace(5)};
  dir.add(7, {});
  EXPECT_EQ(dir.responsible(7), 7u);
  EXPECT_EQ(dir.responsible(8), 7u);
  EXPECT_EQ(dir.successor_of(7), 7u);
  EXPECT_EQ(dir.predecessor_of(7), 7u);
}

TEST(NodeDirectory, EmptyReturnsNullopt) {
  NodeDirectory dir{RingSpace(5)};
  EXPECT_FALSE(dir.responsible(3).has_value());
  EXPECT_FALSE(dir.successor_of(3).has_value());
  EXPECT_FALSE(dir.predecessor_of(3).has_value());
}

TEST(NodeDirectory, RandomNodeCoversMembership) {
  NodeDirectory dir{RingSpace(8)};
  for (Id id : {3u, 60u, 200u}) dir.add(id, {});
  Rng rng(1);
  std::set<Id> seen;
  for (int i = 0; i < 200; ++i) seen.insert(dir.random_node(rng));
  EXPECT_EQ(seen, (std::set<Id>{3, 60, 200}));
}

TEST(FrozenDirectory, MatchesLiveDirectory) {
  RingSpace ring(10);
  NodeDirectory dir(ring);
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    dir.add(rng.next_below(ring.size()),
            {.capacity = static_cast<std::uint32_t>(rng.uniform(4, 10)),
             .bandwidth_kbps = 400});
  }
  FrozenDirectory frozen = dir.freeze();
  EXPECT_EQ(frozen.size(), dir.size());
  for (Id k = 0; k < ring.size(); ++k) {
    ASSERT_EQ(frozen.responsible(k), dir.responsible(k)) << k;
    ASSERT_EQ(frozen.successor_of(k), dir.successor_of(k)) << k;
    ASSERT_EQ(frozen.predecessor_of(k), dir.predecessor_of(k)) << k;
  }
  for (Id id : frozen.ids()) {
    EXPECT_TRUE(frozen.contains(id));
    EXPECT_EQ(frozen.info(id).capacity, dir.info(id).capacity);
    EXPECT_EQ(frozen.ids()[frozen.index_of(id)], id);
  }
  EXPECT_FALSE(frozen.contains(ring.size() - 1) &&
               !dir.contains(ring.size() - 1));
}

TEST(FrozenDirectory, ResponsibleIndexWraps) {
  RingSpace ring(5);
  NodeDirectory dir(ring);
  dir.add(5, {});
  dir.add(20, {});
  FrozenDirectory f = dir.freeze();
  EXPECT_EQ(f.responsible_index(21), 0u);  // wraps to the smallest id
  EXPECT_EQ(f.ids()[f.responsible_index(21)], 5u);
}

TEST(NodeDirectory, RejectsOutOfSpaceIds) {
  NodeDirectory dir{RingSpace(5)};
#ifndef NDEBUG
  EXPECT_DEATH((void)dir.add(32, {}), "");
#else
  GTEST_SKIP() << "assertions disabled";
#endif
}

}  // namespace
}  // namespace cam
