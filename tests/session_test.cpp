// Session-layer unit + identity tests: the CapacityLedger's shared-uplink
// accounting, GroupTree editing, capacity-aware join placement, and —
// the load-bearing one — single-group byte-identity: a session with one
// group streamed through the MultiGroupForwarder must reproduce the
// legacy src/stream schedule bit for bit (in BOTH service disciplines;
// a sole ledger debtor owns the full uplink), pinned field-for-field
// against stream_over_tree() and against a committed golden.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "session/apply.h"
#include "session/multi_forwarder.h"
#include "session/session.h"
#include "strategy/strategy.h"
#include "stream/streaming.h"
#include "workload/population.h"

namespace cam {
namespace {

using session::CapacityLedger;
using session::GroupId;
using session::GroupTree;
using session::JoinOutcome;
using session::SessionLayer;

FrozenDirectory small_world(std::size_t n, std::uint64_t seed,
                            std::uint32_t cap_lo = 4,
                            std::uint32_t cap_hi = 10) {
  workload::PopulationSpec spec;
  spec.n = n;
  spec.ring_bits = 12;
  spec.seed = seed;
  return workload::uniform_capacity_population(spec, cap_lo, cap_hi)
      .freeze();
}

// --- CapacityLedger ------------------------------------------------------

TEST(CapacityLedger, DebitsShareOneBudgetAcrossGroups) {
  const FrozenDirectory dir = small_world(16, 3);
  CapacityLedger ledger(dir);
  const Id x = dir.ids()[0];
  const std::uint32_t cap = ledger.capacity(x);
  ASSERT_GE(cap, 4u);

  // Fill the whole budget from two groups.
  for (std::uint32_t i = 0; i < cap; ++i) {
    EXPECT_TRUE(ledger.debit(x, i % 2 == 0 ? 1 : 2));
  }
  EXPECT_EQ(ledger.used(x), cap);
  EXPECT_EQ(ledger.available(x), 0u);
  // The budget is shared: group 3 cannot take a slot even though it
  // holds none yet.
  EXPECT_FALSE(ledger.debit(x, 3));
  EXPECT_EQ(ledger.used(x, 3), 0u);
  EXPECT_TRUE(ledger.oversubscribed().empty());
  EXPECT_DOUBLE_EQ(ledger.max_utilization(), 1.0);

  ledger.credit(x, 1, ledger.used(x, 1));
  EXPECT_TRUE(ledger.debit(x, 3));
  EXPECT_TRUE(ledger.oversubscribed().empty());
}

TEST(CapacityLedger, SoleDebtorOwnsTheFullUplink) {
  const FrozenDirectory dir = small_world(16, 4);
  CapacityLedger ledger(dir);
  const Id x = dir.ids()[5];
  const double bx = ledger.uplink_kbps(x);

  ASSERT_TRUE(ledger.debit(x, 7));
  ASSERT_TRUE(ledger.debit(x, 7));
  // Single group: the whole B_x regardless of slot count — this is what
  // keeps single-group sessions identical to the legacy plane.
  EXPECT_DOUBLE_EQ(ledger.share_kbps(x, 7), bx);

  ASSERT_TRUE(ledger.debit(x, 8));
  // Two debtors: proportional split, exact arithmetic.
  EXPECT_DOUBLE_EQ(ledger.share_kbps(x, 7), bx * 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(ledger.share_kbps(x, 8), bx * 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(ledger.share_kbps(x, 9), 0.0);
}

// --- GroupTree -----------------------------------------------------------

TEST(GroupTree, EditsKeepStructureAndLedgerConsistent) {
  const FrozenDirectory dir = small_world(16, 5);
  CapacityLedger ledger(dir);
  const std::vector<Id>& ids = dir.ids();

  GroupTree tree(1, ids[0]);
  ASSERT_TRUE(ledger.debit(ids[0], 1));
  tree.add(ids[1], ids[0]);
  ASSERT_TRUE(ledger.debit(ids[0], 1));
  tree.add(ids[2], ids[0]);
  ASSERT_TRUE(ledger.debit(ids[1], 1));
  tree.add(ids[3], ids[1]);
  EXPECT_TRUE(tree.check(ledger).empty());

  EXPECT_EQ(tree.member(ids[3]).depth, 2);
  const std::vector<Id> sub = tree.subtree(ids[1]);
  EXPECT_EQ(sub, (std::vector<Id>{ids[1], ids[3]}));

  // Re-hang ids[1]'s subtree under ids[2]: depths recompute.
  ledger.credit(ids[0], 1);
  ASSERT_TRUE(ledger.debit(ids[2], 1));
  tree.set_parent(ids[1], ids[2]);
  EXPECT_EQ(tree.member(ids[1]).depth, 2);
  EXPECT_EQ(tree.member(ids[3]).depth, 3);
  EXPECT_TRUE(tree.check(ledger).empty());

  // A fanout/ledger mismatch is detected.
  ledger.credit(ids[2], 1);
  EXPECT_FALSE(tree.check(ledger).empty());
  ASSERT_TRUE(ledger.debit(ids[2], 1));
  EXPECT_TRUE(tree.check(ledger).empty());
}

// --- SessionLayer --------------------------------------------------------

TEST(SessionLayer, LifecycleAndCapacityRejection) {
  // 8 nodes x capacity 4 = 32 shared slots. Each full 8-member group
  // debits 7 of them, so by the fifth group the ledger must start
  // rejecting joins rather than oversubscribe anyone.
  const FrozenDirectory dir = small_world(8, 6, 4, 4);
  SessionLayer layer(dir, strategy::registry().make("camchord"));
  const std::vector<Id>& ids = dir.ids();

  ASSERT_TRUE(layer.create_group(1, ids[0]));
  EXPECT_FALSE(layer.create_group(1, ids[1]));  // id taken

  std::size_t joined = 0, rejected = 0;
  for (GroupId g = 1; g <= 6; ++g) {
    if (g > 1) {
      ASSERT_TRUE(layer.create_group(g, ids[0]));
    }
    for (std::size_t i = 1; i < ids.size(); ++i) {
      const session::JoinResult r = layer.join(g, ids[i]);
      if (r.outcome == JoinOutcome::kJoined) ++joined;
      if (r.outcome == JoinOutcome::kNoCapacity) ++rejected;
    }
    ASSERT_TRUE(layer.check().empty()) << "after group " << g;
  }
  EXPECT_EQ(joined + rejected, 6u * (ids.size() - 1));
  EXPECT_GT(rejected, 0u);  // the shared budget really saturates
  EXPECT_EQ(layer.counters().joins_rejected, rejected);
  EXPECT_LE(layer.ledger().max_utilization(), 1.0);
  EXPECT_TRUE(layer.ledger().oversubscribed().empty());

  EXPECT_EQ(layer.join(1, ids[0]).outcome, JoinOutcome::kAlreadyMember);
  EXPECT_EQ(layer.join(99, ids[1]).outcome, JoinOutcome::kNoSuchGroup);
  EXPECT_EQ(layer.join(1, ~Id{0} - 1).outcome, JoinOutcome::kUnknownNode);

  // Source leave destroys its group and credits every debit it held.
  const std::size_t before = layer.group_count();
  EXPECT_TRUE(layer.leave(1, ids[0]));
  EXPECT_EQ(layer.group_count(), before - 1);
  EXPECT_TRUE(layer.check().empty());

  // Tearing every group down returns the ledger to zero.
  for (GroupId g : layer.group_ids()) EXPECT_TRUE(layer.destroy_group(g));
  EXPECT_DOUBLE_EQ(layer.ledger().max_utilization(), 0.0);
}

TEST(SessionLayer, LeaveAndFailReparentOrDropDeterministically) {
  // Roomy capacities: every join below must land, so the test can pin
  // exact membership after the leave and the failure.
  const FrozenDirectory dir = small_world(32, 7, 16, 16);
  SessionLayer layer(dir, strategy::registry().make("camkoorde"));
  const std::vector<Id>& ids = dir.ids();

  ASSERT_TRUE(layer.create_group(1, ids[0]));
  ASSERT_TRUE(layer.create_group(2, ids[0]));
  for (std::size_t i = 1; i < 12; ++i) {
    ASSERT_EQ(layer.join(1, ids[i]).outcome, JoinOutcome::kJoined);
  }
  for (std::size_t i = 1; i < 6; ++i) {
    ASSERT_EQ(layer.join(2, ids[i]).outcome, JoinOutcome::kJoined);
  }
  ASSERT_TRUE(layer.check().empty());

  // A mid-tree leave re-parents its children; state stays consistent.
  EXPECT_TRUE(layer.leave(1, ids[1]));
  EXPECT_FALSE(layer.group(1)->contains(ids[1]));
  EXPECT_TRUE(layer.group(2)->contains(ids[1]));
  EXPECT_TRUE(layer.check().empty());

  // A failure removes the node from EVERY group at once.
  layer.fail_node(ids[2]);
  EXPECT_FALSE(layer.group(1)->contains(ids[2]));
  EXPECT_FALSE(layer.group(2)->contains(ids[2]));
  EXPECT_TRUE(layer.check().empty());
  EXPECT_EQ(layer.counters().failures, 2u);

  // Determinism: an identical world replays to identical trees.
  SessionLayer replay(dir, strategy::registry().make("camkoorde"));
  ASSERT_TRUE(replay.create_group(1, ids[0]));
  ASSERT_TRUE(replay.create_group(2, ids[0]));
  for (std::size_t i = 1; i < 12; ++i) replay.join(1, ids[i]);
  for (std::size_t i = 1; i < 6; ++i) replay.join(2, ids[i]);
  replay.leave(1, ids[1]);
  replay.fail_node(ids[2]);
  for (GroupId g : layer.group_ids()) {
    ASSERT_NE(replay.group(g), nullptr);
    EXPECT_EQ(layer.group(g)->sorted_members(),
              replay.group(g)->sorted_members());
    for (Id m : layer.group(g)->sorted_members()) {
      EXPECT_EQ(layer.group(g)->member(m).parent,
                replay.group(g)->member(m).parent);
      EXPECT_EQ(layer.group(g)->member(m).depth,
                replay.group(g)->member(m).depth);
    }
  }
}

// --- single-group byte-identity vs the legacy stream plane ---------------

std::string golden_path(const std::string& name) {
  return std::string(CAM_GOLDEN_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void expect_golden(const std::string& name, const std::string& text) {
  const std::string path = golden_path(name);
  if (std::getenv("CAM_REGEN_GOLDENS") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    out << text;
    FAIL() << "regenerated " << path << " (" << text.size() << " bytes)";
  }
  const std::string want = read_file(path);
  ASSERT_FALSE(want.empty()) << "missing golden " << path;
  EXPECT_EQ(text, want) << "single-group session diverged from golden "
                        << name;
}

std::string render_session(const dataplane::SessionStats& s) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "rate=%.17g completion=%.17g mean=%.17g first=%.17g "
                "receivers=%zu\n",
                s.session_rate_kbps, s.completion_ms, s.mean_rate_kbps,
                s.max_first_packet_ms, s.receivers);
  return buf;
}

TEST(SessionSingleGroup, ByteIdenticalToLegacyStreamPlane) {
  std::ostringstream golden;
  for (const char* key : {"camchord", "camkoorde"}) {
    const FrozenDirectory dir = small_world(64, 11);
    SessionLayer layer(dir, strategy::registry().make(key));
    const std::vector<Id>& ids = dir.ids();
    ASSERT_TRUE(layer.create_group(9, ids[0]));
    for (std::size_t i = 1; i < 40; ++i) {
      ASSERT_EQ(layer.join(9, ids[i]).outcome, JoinOutcome::kJoined);
    }
    ASSERT_TRUE(layer.check().empty());

    // Legacy plane: the SAME recorded tree, full uplinks.
    const MulticastTree tree = layer.group(9)->to_multicast_tree();
    const ConstantLatency latency(10.0);
    StreamConfig cfg;
    cfg.packet_bytes = 1250;
    cfg.num_packets = 48;
    cfg.stream = 9;
    const StreamResult legacy = stream_over_tree(
        tree, [&](Id x) { return dir.info(x).bandwidth_kbps; }, latency,
        cfg);

    session::GroupTraffic traffic;
    traffic.group = 9;
    traffic.packet_bytes = 1250;
    traffic.num_packets = 48;

    for (session::SchedMode mode :
         {session::SchedMode::kShared, session::SchedMode::kLedgerShares}) {
      session::MultiGroupForwarder fwd(layer, latency,
                                       session::MultiGroupConfig{mode});
      const session::MultiGroupStats stats = fwd.run({traffic});
      ASSERT_EQ(stats.groups.size(), 1u);
      const dataplane::SessionStats& got = stats.groups[0].session;
      // Bit-for-bit: EXPECT_EQ on every double, no tolerance.
      EXPECT_EQ(got.session_rate_kbps, legacy.session_rate_kbps);
      EXPECT_EQ(got.completion_ms, legacy.completion_ms);
      EXPECT_EQ(got.mean_rate_kbps, legacy.mean_rate_kbps);
      EXPECT_EQ(got.max_first_packet_ms, legacy.max_first_packet_ms);
      EXPECT_EQ(got.receivers, legacy.receivers);
      EXPECT_EQ(stats.groups[0].duplicate_deliveries, 0u);
      EXPECT_EQ(stats.groups[0].copies_delivered,
                stats.groups[0].copies_expected);
    }
    golden << strategy::registry().display_name(key) << " "
           << render_session(legacy);
  }
  expect_golden("session_single_group.txt", golden.str());
}

}  // namespace
}  // namespace cam
