#include "camchord/net.h"

#include <gtest/gtest.h>

#include "camchord/oracle.h"
#include "multicast/metrics.h"
#include "test_util.h"
#include "util/rng.h"
#include "workload/churn.h"

namespace cam::camchord {
namespace {

struct Fixture {
  RingSpace ring{16};
  Simulator sim;
  ConstantLatency lat{1.0};
  Network net{sim, lat};
  CamChordNet overlay{ring, net};
  Rng rng{99};

  // Builds an overlay of n members via the join protocol.
  void grow(std::size_t n, std::uint32_t cap_lo = 4, std::uint32_t cap_hi = 10) {
    Id first = rng.next_below(ring.size());
    overlay.bootstrap(first, info(cap_lo, cap_hi));
    while (overlay.size() < n) {
      Id id = rng.next_below(ring.size());
      if (overlay.contains(id)) continue;
      auto members = overlay.members_sorted();
      Id via = members[rng.next_below(members.size())];
      ASSERT_TRUE(overlay.join(id, info(cap_lo, cap_hi), via));
      // A couple of stabilization rounds between arrivals, as the Chord
      // protocol would run periodically.
      overlay.stabilize_all();
    }
    overlay.converge();
  }

  NodeInfo info(std::uint32_t lo, std::uint32_t hi) {
    return NodeInfo{static_cast<std::uint32_t>(rng.uniform(lo, hi)),
                    400 + rng.next_double() * 600};
  }

  // Ground truth directory of the current membership.
  NodeDirectory truth() {
    NodeDirectory dir(ring);
    for (Id id : overlay.members_sorted()) dir.add(id, overlay.info(id));
    return dir;
  }
};

TEST(CamChordNet, BootstrapSingleton) {
  Fixture fx;
  fx.overlay.bootstrap(42, {.capacity = 4, .bandwidth_kbps = 500});
  EXPECT_EQ(fx.overlay.size(), 1u);
  EXPECT_EQ(fx.overlay.successor(42), 42u);
  auto r = fx.overlay.lookup(42, 7);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.owner, 42u);
}

TEST(CamChordNet, JoinsConvergeToCorrectRing) {
  Fixture fx;
  fx.grow(60);
  NodeDirectory truth = fx.truth();
  for (Id id : fx.overlay.members_sorted()) {
    EXPECT_EQ(fx.overlay.successor(id), *truth.successor_of(id)) << id;
    ASSERT_TRUE(fx.overlay.predecessor(id).has_value());
    EXPECT_EQ(*fx.overlay.predecessor(id), *truth.predecessor_of(id)) << id;
  }
}

TEST(CamChordNet, ConvergedLookupMatchesDirectory) {
  Fixture fx;
  fx.grow(80);
  NodeDirectory truth = fx.truth();
  for (int t = 0; t < 200; ++t) {
    Id from = truth.random_node(fx.rng);
    Id k = fx.rng.next_below(fx.ring.size());
    auto r = fx.overlay.lookup(from, k);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.owner, *truth.responsible(k));
  }
}

TEST(CamChordNet, ConvergedEntriesMatchOracle) {
  Fixture fx;
  fx.grow(50);
  NodeDirectory truth = fx.truth();
  for (Id id : fx.overlay.members_sorted()) {
    auto idents = neighbor_identifiers(fx.ring, fx.overlay.info(id).capacity, id);
    const auto& entries = fx.overlay.entries(id);
    ASSERT_EQ(entries.size(), idents.size());
    for (std::size_t i = 0; i < idents.size(); ++i) {
      EXPECT_EQ(entries[i], *truth.responsible(idents[i]))
          << "node " << id << " ident " << idents[i];
    }
  }
}

TEST(CamChordNet, MulticastCoversEveryoneOnConvergedOverlay) {
  Fixture fx;
  fx.grow(120);
  NodeDirectory truth = fx.truth();
  Id source = truth.random_node(fx.rng);
  MulticastTree tree = fx.overlay.multicast(source);
  EXPECT_EQ(tree.size(), fx.overlay.size());
  EXPECT_EQ(tree.duplicate_deliveries(), 0u);
  EXPECT_EQ(capacity_violations(
                tree, [&](Id x) { return fx.overlay.info(x).capacity; }),
            0u);
}

TEST(CamChordNet, MulticastMatchesOracleTreeWhenConverged) {
  Fixture fx;
  fx.grow(60);
  FrozenDirectory f = fx.truth().freeze();
  Id source = f.ids()[5];
  MulticastTree protocol_tree = fx.overlay.multicast(source);
  MulticastTree oracle_tree =
      multicast(fx.ring, f, test::capacity_fn(f), source);
  ASSERT_EQ(protocol_tree.size(), oracle_tree.size());
  for (Id id : f.ids()) {
    ASSERT_TRUE(protocol_tree.delivered(id));
    EXPECT_EQ(protocol_tree.record_of(id)->parent,
              oracle_tree.record_of(id)->parent)
        << id;
  }
}

TEST(CamChordNet, GracefulLeaveKeepsRingCorrect) {
  Fixture fx;
  fx.grow(50);
  auto members = fx.overlay.members_sorted();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(fx.overlay.leave(members[static_cast<std::size_t>(i) * 3]));
  }
  fx.overlay.converge();
  NodeDirectory truth = fx.truth();
  for (Id id : fx.overlay.members_sorted()) {
    EXPECT_EQ(fx.overlay.successor(id), *truth.successor_of(id));
  }
  Id from = truth.random_node(fx.rng);
  for (int t = 0; t < 50; ++t) {
    Id k = fx.rng.next_below(fx.ring.size());
    auto r = fx.overlay.lookup(from, k);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.owner, *truth.responsible(k));
  }
}

TEST(CamChordNet, AbruptFailuresRepairedByStabilization) {
  Fixture fx;
  fx.grow(100);
  workload::fail_random_fraction(fx.overlay, 0.2, fx.rng);
  fx.overlay.converge();
  NodeDirectory truth = fx.truth();
  for (int t = 0; t < 100; ++t) {
    Id from = truth.random_node(fx.rng);
    Id k = fx.rng.next_below(fx.ring.size());
    auto r = fx.overlay.lookup(from, k);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.owner, *truth.responsible(k));
  }
  Id source = truth.random_node(fx.rng);
  MulticastTree tree = fx.overlay.multicast(source);
  EXPECT_EQ(tree.size(), fx.overlay.size());
}

TEST(CamChordNet, MulticastDegradesGracefullyBeforeRepair) {
  Fixture fx;
  fx.grow(150);
  std::size_t before = fx.overlay.size();
  workload::fail_random_fraction(fx.overlay, 0.1, fx.rng);
  // No repair rounds: stale tables lose some deliveries but most of the
  // group is still reached through backup paths.
  Id source = fx.overlay.members_sorted().front();
  MulticastTree tree = fx.overlay.multicast(source);
  EXPECT_GT(tree.size(), fx.overlay.size() / 2);
  EXPECT_LE(tree.size(), before);
}

TEST(CamChordNet, OracleFillMatchesConvergedState) {
  Fixture fx;
  fx.grow(40);
  // Snapshot converged entries, then oracle_fill and compare.
  std::vector<std::vector<Id>> converged;
  auto members = fx.overlay.members_sorted();
  converged.reserve(members.size());
  for (Id id : members) {
    auto e = fx.overlay.entries(id);
    converged.emplace_back(e.begin(), e.end());
  }
  fx.overlay.oracle_fill();
  for (std::size_t i = 0; i < members.size(); ++i) {
    auto e = fx.overlay.entries(members[i]);
    EXPECT_EQ(std::vector<Id>(e.begin(), e.end()), converged[i]) << members[i];
  }
}

TEST(CamChordNet, JoinRejectsDuplicateAndLowCapacity) {
  Fixture fx;
  fx.overlay.bootstrap(10, {.capacity = 4, .bandwidth_kbps = 1});
  EXPECT_FALSE(fx.overlay.join(10, {.capacity = 4, .bandwidth_kbps = 1}, 10));
  EXPECT_FALSE(fx.overlay.join(11, {.capacity = 1, .bandwidth_kbps = 1}, 10));
  EXPECT_FALSE(fx.overlay.join(12, {.capacity = 4, .bandwidth_kbps = 1}, 99));
}

TEST(CamChordNet, MaintenanceTrafficIsAccounted) {
  Fixture fx;
  fx.grow(30);
  auto before = fx.net.stats();
  EXPECT_GT(before.messages[static_cast<int>(MsgClass::kMaintenance)], 0u);
  EXPECT_GT(before.messages[static_cast<int>(MsgClass::kControl)], 0u);
  Id source = fx.overlay.members_sorted().front();
  (void)fx.overlay.multicast(source);
  auto after = fx.net.stats();
  EXPECT_EQ(after.messages[static_cast<int>(MsgClass::kData)] -
                before.messages[static_cast<int>(MsgClass::kData)],
            fx.overlay.size() - 1);
}

}  // namespace
}  // namespace cam::camchord
