// Exhaustive verification on small rings: every (start node, target
// identifier) lookup pair and every multicast source, for both CAM
// systems and several populations. Small enough to brute-force, strong
// enough to catch any wrap-around or boundary slip the sampled property
// tests might miss.
#include <gtest/gtest.h>

#include "camchord/oracle.h"
#include "camkoorde/oracle.h"
#include "multicast/metrics.h"
#include "test_util.h"

namespace cam {
namespace {

struct Param {
  std::size_t n;
  int bits;
  std::uint32_t cap_lo, cap_hi;
  std::uint64_t seed;
};

class ExhaustiveSmallRing : public ::testing::TestWithParam<Param> {};

TEST_P(ExhaustiveSmallRing, EveryLookupFromEveryNodeIsCorrect) {
  auto [n, bits, cap_lo, cap_hi, seed] = GetParam();
  NodeDirectory dir = test::make_population(n, bits, cap_lo, cap_hi, seed);
  FrozenDirectory f = dir.freeze();
  auto cap = test::capacity_fn(f);
  for (Id from : f.ids()) {
    for (Id k = 0; k < f.ring().size(); ++k) {
      Id want = *f.responsible(k);
      auto rc = camchord::lookup(f.ring(), f, cap, from, k);
      ASSERT_TRUE(rc.ok) << "camchord from=" << from << " k=" << k;
      ASSERT_EQ(rc.owner, want) << "camchord from=" << from << " k=" << k;
      if (cap_lo >= 4) {
        auto rk = camkoorde::lookup(f.ring(), f, cap, from, k);
        ASSERT_TRUE(rk.ok) << "camkoorde from=" << from << " k=" << k;
        ASSERT_EQ(rk.owner, want) << "camkoorde from=" << from << " k=" << k;
      }
    }
  }
}

TEST_P(ExhaustiveSmallRing, EverySourceMulticastsToEveryoneExactlyOnce) {
  auto [n, bits, cap_lo, cap_hi, seed] = GetParam();
  NodeDirectory dir = test::make_population(n, bits, cap_lo, cap_hi, seed);
  FrozenDirectory f = dir.freeze();
  auto cap = test::capacity_fn(f);
  for (Id source : f.ids()) {
    MulticastTree tc = camchord::multicast(f.ring(), f, cap, source);
    ASSERT_EQ(tc.size(), f.size()) << "camchord source=" << source;
    ASSERT_EQ(tc.duplicate_deliveries(), 0u);
    ASSERT_EQ(capacity_violations(tc, cap), 0u);
    if (cap_lo >= 4) {
      MulticastTree tk = camkoorde::multicast(f.ring(), f, cap, source);
      ASSERT_EQ(tk.size(), f.size()) << "camkoorde source=" << source;
      ASSERT_EQ(capacity_violations(tk, cap), 0u);
    }
  }
}

TEST_P(ExhaustiveSmallRing, EveryRegionMulticastHitsExactlyTheRegion) {
  auto [n, bits, cap_lo, cap_hi, seed] = GetParam();
  NodeDirectory dir = test::make_population(n, bits, cap_lo, cap_hi, seed);
  FrozenDirectory f = dir.freeze();
  auto cap = test::capacity_fn(f);
  // All source x bound pairs over the member set.
  for (Id source : f.ids()) {
    for (Id bound : f.ids()) {
      MulticastTree t =
          camchord::multicast_region(f.ring(), f, cap, source, bound);
      for (Id id : f.ids()) {
        bool inside = id == source || f.ring().in_oc(id, source, bound);
        ASSERT_EQ(t.delivered(id), inside)
            << "source=" << source << " bound=" << bound << " id=" << id;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Rings, ExhaustiveSmallRing,
    ::testing::Values(Param{8, 6, 4, 10, 1}, Param{12, 6, 4, 4, 2},
                      Param{16, 7, 4, 20, 3}, Param{10, 6, 2, 3, 4},
                      Param{24, 8, 5, 12, 5}, Param{3, 6, 4, 8, 6},
                      Param{2, 6, 4, 4, 7}),
    [](const auto& info) {
      const Param& p = info.param;
      return "n" + std::to_string(p.n) + "b" + std::to_string(p.bits) + "c" +
             std::to_string(p.cap_lo) + "to" + std::to_string(p.cap_hi);
    });

}  // namespace
}  // namespace cam
