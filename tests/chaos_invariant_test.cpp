// Property-style chaos tests: seeded fault plans executed end to end by
// run_chaos (src/fault/chaos_run.h) over small rings. The properties:
//
//  * green path — for every seed, after the faults heal and the overlay
//    re-stabilizes, every invariant holds (zero violations) and a final
//    multicast covers every live member;
//  * determinism — the same (config, plan, seed) renders a
//    byte-identical report (violations, journal, telemetry counters);
//  * sensitivity — the checker is not vacuous: it flags a deliberately
//    broken overlay (negative tests).
//
// The seed sweep is split across several TEST bodies so ctest runs the
// batches in parallel.
#include <gtest/gtest.h>

#include "fault/chaos_run.h"
#include "proto/async_camchord.h"
#include "util/rng.h"

namespace cam::fault {
namespace {

ChaosConfig small_cfg(const char* system, std::uint64_t seed) {
  ChaosConfig cfg;
  cfg.system = system;
  cfg.n = 10;
  cfg.bits = 10;
  cfg.seed = seed;
  cfg.mid_multicasts = 1;
  return cfg;
}

// Deterministic per-seed plan mixing every fault kind; the partition
// and every knob are cleared before the plan ends (run_chaos heals
// again regardless, but the plan itself is self-contained).
FaultPlan mixed_plan(std::uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);
  FaultPlan plan;
  plan.drop(0, rng.next_below(8) / 100.0);
  plan.duplicate(0, rng.next_below(8) / 100.0,
                 1 + static_cast<int>(rng.next_below(2)));
  plan.reorder(0, rng.next_below(30) / 100.0,
               static_cast<SimTime>(10 + rng.next_below(50)));
  switch (rng.next_below(3)) {
    case 0: plan.crash(1'000, 1 + static_cast<int>(rng.next_below(2))); break;
    case 1: plan.join(1'000, 1 + static_cast<int>(rng.next_below(3))); break;
    default: plan.restart(1'000, 1); break;
  }
  if (rng.chance(0.5)) {
    plan.partition(2'000, (20 + rng.next_below(60)) / 100.0);
    plan.heal(4'000);
  }
  plan.clear(5'000);
  return plan;
}

void expect_clean_sweep(const char* system, std::uint64_t lo,
                        std::uint64_t hi) {
  for (std::uint64_t seed = lo; seed < hi; ++seed) {
    ChaosReport r = run_chaos(small_cfg(system, seed), mixed_plan(seed));
    EXPECT_TRUE(r.ok) << system << " seed " << seed << ":\n"
                      << render_violations(r.violations);
    EXPECT_DOUBLE_EQ(r.consistency, 1.0) << system << " seed " << seed;
    ASSERT_GE(r.multicasts.size(), 2u) << system << " seed " << seed;
    // The post-heal multicast reaches everyone (coverage is also an
    // invariant, but assert it explicitly for the error message).
    const ChaosMulticast& final_mc = r.multicasts.back();
    EXPECT_EQ(final_mc.reached, final_mc.live)
        << system << " seed " << seed;
  }
}

// 104 seeded plans per system, split into batches for test parallelism.
TEST(ChaosInvariants, CamChordSeeds0to13) { expect_clean_sweep("camchord", 0, 13); }
TEST(ChaosInvariants, CamChordSeeds13to26) { expect_clean_sweep("camchord", 13, 26); }
TEST(ChaosInvariants, CamChordSeeds26to39) { expect_clean_sweep("camchord", 26, 39); }
TEST(ChaosInvariants, CamChordSeeds39to52) { expect_clean_sweep("camchord", 39, 52); }
TEST(ChaosInvariants, CamKoordeSeeds0to13) { expect_clean_sweep("camkoorde", 0, 13); }
TEST(ChaosInvariants, CamKoordeSeeds13to26) { expect_clean_sweep("camkoorde", 13, 26); }
TEST(ChaosInvariants, CamKoordeSeeds26to39) { expect_clean_sweep("camkoorde", 26, 39); }
TEST(ChaosInvariants, CamKoordeSeeds39to52) { expect_clean_sweep("camkoorde", 39, 52); }

// The acceptance-criteria integration test: two runs of the same
// (config, plan, seed) produce byte-identical reports — violations,
// realized fault journal, and telemetry counters included.
TEST(ChaosInvariants, DeterminismSameSeedIdenticalReport) {
  for (const char* system : {"camchord", "camkoorde"}) {
    ChaosReport a = run_chaos(small_cfg(system, 77), mixed_plan(77));
    ChaosReport b = run_chaos(small_cfg(system, 77), mixed_plan(77));
    EXPECT_EQ(a.render(), b.render()) << system;
    EXPECT_EQ(a.journal, b.journal) << system;
    EXPECT_EQ(a.counters_csv, b.counters_csv) << system;
  }
}

TEST(ChaosInvariants, DifferentSeedDifferentRealizedSchedule) {
  ChaosReport a = run_chaos(small_cfg("camchord", 1), mixed_plan(1));
  ChaosReport b = run_chaos(small_cfg("camchord", 2), mixed_plan(2));
  EXPECT_NE(a.journal, b.journal);
}

// Negative test: with quiescence forcing disabled and a partition that
// never heals, the final sweep runs against a torn overlay — the
// checker must report violations and the report must not be ok.
TEST(ChaosInvariants, UnhealedPartitionIsDetected) {
  ChaosConfig cfg = small_cfg("camchord", 5);
  cfg.force_quiescence = false;
  cfg.final_multicast = false;
  cfg.mid_multicasts = 0;
  cfg.tail_ms = 20'000;  // plenty of time for views to diverge
  FaultPlan plan;
  plan.partition(0, 0.5);  // installed and never healed
  ChaosReport r = run_chaos(cfg, plan);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.violations.empty());
  EXPECT_NE(r.render().find("result: VIOLATIONS"), std::string::npos);
}

// Negative test at the checker level: crash a third of a converged ring
// and check *immediately* — stabilization has not run, so successor /
// predecessor pointers still name dead nodes and the checker must say
// so; after repair the same checks come back clean.
TEST(ChaosInvariants, CheckerFlagsBrokenStabilizationThenClears) {
  RingSpace ring(10);
  Simulator sim;
  UniformLatency lat(5, 25, 3);
  Network net(sim, lat);
  proto::HostBus bus(net);
  proto::AsyncCamChordNet overlay(ring, bus);
  Rng rng(9);
  auto info = [&] {
    return NodeInfo{static_cast<std::uint32_t>(rng.uniform(4, 8)),
                    400 + rng.next_double() * 600};
  };
  overlay.bootstrap(rng.next_below(ring.size()), info());
  overlay.run_for(500);
  while (overlay.size() < 12) {
    Id id = rng.next_below(ring.size());
    if (overlay.known(id)) continue;
    auto members = overlay.members_sorted();
    overlay.spawn(id, info(), members[rng.next_below(members.size())]);
    overlay.run_for(300);
  }
  while (overlay.ring_consistency() < 1.0) overlay.run_for(2'000);
  overlay.run_for(30'000);  // table refresh

  InvariantChecker checker(overlay);
  ASSERT_TRUE(checker.check_quiescent().empty())
      << render_violations(checker.check_quiescent());

  // Crash 4 nodes; without any repair time the ring oracle disagrees
  // with the survivors' pointers.
  auto members = overlay.members_sorted();
  for (int i = 0; i < 4; ++i) overlay.crash(members[2 * i]);
  EXPECT_FALSE(checker.check_quiescent().empty());

  // Let repair run; the checker must come back clean.
  SimTime deadline = sim.now() + 240'000;
  while (sim.now() < deadline && !checker.check_quiescent().empty()) {
    overlay.run_for(5'000);
  }
  EXPECT_TRUE(checker.check_quiescent().empty())
      << render_violations(checker.check_quiescent());
}

}  // namespace
}  // namespace cam::fault
