// FaultPlan: DSL round-trips, parse diagnostics, event ordering, and
// the seeded property sweep — for any generated plan, to_string/parse
// is the identity, so a dumped plan always reproduces the run.
#include <gtest/gtest.h>

#include "fault/fault_plan.h"
#include "util/rng.h"

namespace cam::fault {
namespace {

TEST(FaultPlan, BuilderSortsByTimeKeepingInsertionOrderOnTies) {
  FaultPlan plan;
  plan.heal(500).drop(0, 0.1).crash(500, 2).duplicate(0, 0.2, 3);
  const auto& ev = plan.events();
  ASSERT_EQ(ev.size(), 4u);
  EXPECT_EQ(ev[0].kind, FaultKind::kDrop);       // t=0, added first
  EXPECT_EQ(ev[1].kind, FaultKind::kDuplicate);  // t=0, added second
  EXPECT_EQ(ev[2].kind, FaultKind::kHeal);       // t=500, added first
  EXPECT_EQ(ev[3].kind, FaultKind::kCrash);      // t=500, added second
  EXPECT_EQ(plan.duration(), 500);
}

TEST(FaultPlan, ToStringRendersCanonicalDsl) {
  FaultPlan plan;
  plan.drop(0, 0.25)
      .drop_link(100, 3, 9, 1)
      .duplicate(200, 0.5, 2)
      .reorder(300, 0.1, 40)
      .partition(400, 0.5)
      .partition_hosts(500, {1, 2, 3})
      .heal(600)
      .restart(700, 4)
      .clear(800);
  EXPECT_EQ(plan.to_string(),
            "at 0 drop p=0.25\n"
            "at 100 drop p=1 link=3:9\n"
            "at 200 dup p=0.5 copies=2\n"
            "at 300 reorder p=0.1 ms=40\n"
            "at 400 partition frac=0.5\n"
            "at 500 partition ids=1,2,3\n"
            "at 600 heal\n"
            "at 700 restart n=4\n"
            "at 800 clear\n");
}

TEST(FaultPlan, ParsesCommentsBlanksAndFields) {
  auto plan = FaultPlan::parse(
      "# warm-up faults\n"
      "\n"
      "at 0 drop p=0.1   # trailing comment\n"
      "at 1000 delay p=0.3 ms=25\n"
      "at 2000 join n=5\n");
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->events().size(), 3u);
  EXPECT_EQ(plan->events()[0].kind, FaultKind::kDrop);
  EXPECT_DOUBLE_EQ(plan->events()[1].ms, 25);
  EXPECT_EQ(plan->events()[2].count, 5);
}

TEST(FaultPlan, ParseErrorsNameTheLineAndCause) {
  std::string error;
  EXPECT_FALSE(FaultPlan::parse("at 0 drop p=0.1\nat x drop p=0.1", &error));
  EXPECT_EQ(error, "line 2: bad time 'x'");

  EXPECT_FALSE(FaultPlan::parse("at 0 explode p=1", &error));
  EXPECT_EQ(error, "line 1: unknown fault kind 'explode'");

  EXPECT_FALSE(FaultPlan::parse("at 0 drop p=1.5", &error));
  EXPECT_EQ(error, "line 1: bad probability '1.5'");

  EXPECT_FALSE(FaultPlan::parse("at 0 drop", &error));
  EXPECT_EQ(error, "line 1: drop needs p=");

  EXPECT_FALSE(FaultPlan::parse("drop p=0.1", &error));
  EXPECT_EQ(error, "line 1: expected 'at <ms> <kind> ...'");

  EXPECT_FALSE(FaultPlan::parse("at 0 drop p=0.1 q=2", &error));
  EXPECT_EQ(error, "line 1: unknown key 'q'");

  EXPECT_FALSE(FaultPlan::parse("at 0 dup p=0.1 link=1:2", &error));
  EXPECT_EQ(error, "line 1: link= is only valid on drop");

  EXPECT_FALSE(FaultPlan::parse("at 0 partition frac=0.5 ids=1,2", &error));
  EXPECT_EQ(error, "line 1: partition needs exactly one of frac= / ids=");

  EXPECT_FALSE(FaultPlan::parse("at 0 crash", &error));
  EXPECT_EQ(error, "line 1: crash needs n=");
}

TEST(FaultPlan, RegionFailRoundTripsExactly) {
  FaultPlan plan;
  plan.region_fail(240, 1024, 0.1, 3).region_fail(500, 0, 0.5, 1);
  EXPECT_EQ(plan.to_string(),
            "at 240 regionfail center=1024 radius=0.1 n=3\n"
            "at 500 regionfail center=0 radius=0.5 n=1\n");
  const auto parsed = FaultPlan::parse(plan.to_string());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, plan);
  const auto& ev = parsed->events();
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_EQ(ev[0].kind, FaultKind::kRegionFail);
  EXPECT_EQ(ev[0].a, 1024u);
  EXPECT_DOUBLE_EQ(ev[0].radius, 0.1);
  EXPECT_EQ(ev[0].count, 3);
}

TEST(FaultPlan, RegionFailParseDiagnostics) {
  std::string error;
  EXPECT_FALSE(
      FaultPlan::parse("at 0 regionfail center=1 radius=0.6 n=2", &error));
  EXPECT_EQ(error, "line 1: bad radius '0.6' (need 0<f<=0.5)");

  EXPECT_FALSE(
      FaultPlan::parse("at 0 regionfail center=1 radius=0 n=2", &error));
  EXPECT_EQ(error, "line 1: bad radius '0' (need 0<f<=0.5)");

  EXPECT_FALSE(FaultPlan::parse("at 0 regionfail center=1 n=2", &error));
  EXPECT_EQ(error, "line 1: regionfail needs center=, radius= and n=");

  EXPECT_FALSE(FaultPlan::parse("at 0 regionfail radius=0.2 n=2", &error));
  EXPECT_EQ(error, "line 1: regionfail needs center=, radius= and n=");

  EXPECT_FALSE(FaultPlan::parse("at 0 crash n=2 center=5", &error));
  EXPECT_EQ(error, "line 1: center=/radius= are only valid on regionfail");

  EXPECT_FALSE(FaultPlan::parse("at 0 drop p=0.1 radius=0.2", &error));
  EXPECT_EQ(error, "line 1: center=/radius= are only valid on regionfail");
}

TEST(FaultPlan, MissingRequiredFieldsRejected) {
  EXPECT_FALSE(FaultPlan::parse("at 0 delay p=0.5"));   // no ms=
  EXPECT_FALSE(FaultPlan::parse("at 0 reorder ms=10"));  // no p=
  EXPECT_FALSE(FaultPlan::parse("at 0 partition"));      // no frac/ids
  EXPECT_FALSE(FaultPlan::parse("at 0 join n=0"));       // zero count
  EXPECT_FALSE(FaultPlan::parse("at 0 partition ids="));
  EXPECT_FALSE(FaultPlan::parse("at 0 drop p=0.1 link=12"));
  EXPECT_FALSE(FaultPlan::parse("at -5 clear"));
}

// Builds a pseudo-random but deterministic plan from a seed — the same
// generator the chaos property tests use.
FaultPlan random_plan(std::uint64_t seed) {
  Rng rng(seed);
  FaultPlan plan;
  int events = 1 + static_cast<int>(rng.next_below(12));
  SimTime t = 0;
  for (int i = 0; i < events; ++i) {
    t += static_cast<SimTime>(rng.next_below(2'000));
    double p = rng.next_below(100) / 100.0;  // two decimals: %g-exact
    switch (rng.next_below(11)) {
      case 0: plan.drop(t, p); break;
      case 1:
        plan.drop_link(t, rng.next_below(1'000), rng.next_below(1'000), p);
        break;
      case 2: plan.duplicate(t, p, 1 + static_cast<int>(rng.next_below(3))); break;
      case 3: plan.delay(t, p, static_cast<SimTime>(rng.next_below(200))); break;
      case 4: plan.reorder(t, p, static_cast<SimTime>(rng.next_below(100))); break;
      case 5: plan.partition(t, (1 + rng.next_below(98)) / 100.0); break;
      case 6: plan.heal(t); break;
      case 7: plan.crash(t, 1 + static_cast<int>(rng.next_below(4))); break;
      case 8: plan.join(t, 1 + static_cast<int>(rng.next_below(4))); break;
      case 9:
        plan.region_fail(t, rng.next_below(4'096),
                         (1 + rng.next_below(50)) / 100.0,
                         1 + static_cast<int>(rng.next_below(4)));
        break;
      default: plan.clear(t); break;
    }
  }
  return plan;
}

TEST(FaultPlan, HundredSeededPlansRoundTripExactly) {
  for (std::uint64_t seed = 1; seed <= 120; ++seed) {
    FaultPlan plan = random_plan(seed);
    std::string text = plan.to_string();
    std::string error;
    auto reparsed = FaultPlan::parse(text, &error);
    ASSERT_TRUE(reparsed.has_value()) << "seed " << seed << ": " << error;
    EXPECT_EQ(*reparsed, plan) << "seed " << seed;
    EXPECT_EQ(reparsed->to_string(), text) << "seed " << seed;
  }
}

TEST(FaultPlan, SameSeedSamePlanDifferentSeedDifferentPlan) {
  EXPECT_EQ(random_plan(42), random_plan(42));
  EXPECT_NE(random_plan(42).to_string(), random_plan(43).to_string());
}

}  // namespace
}  // namespace cam::fault
