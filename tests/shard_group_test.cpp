#include "sim/shard_group.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "runtime/shard_team.h"

namespace cam {
namespace {

TEST(ShardTeam, RunsEveryLaneAndReusesThreads) {
  runtime::ShardTeam team(4);
  std::vector<int> hits(4, 0);
  // Many rounds: the whole point is barrier reuse without respawning.
  for (int round = 0; round < 200; ++round) {
    team.run([&](std::size_t lane) { hits[lane] += 1; });
  }
  for (int h : hits) EXPECT_EQ(h, 200);
}

TEST(ShardTeam, SingleLaneRunsInline) {
  runtime::ShardTeam team(1);
  int hits = 0;
  team.run([&](std::size_t lane) {
    EXPECT_EQ(lane, 0u);
    ++hits;
  });
  EXPECT_EQ(hits, 1);
}

TEST(ShardMap, PartitionsIdSpaceContiguously) {
  ShardMap map{16, 4};
  EXPECT_EQ(map.of(0), 0u);
  EXPECT_EQ(map.of((1u << 14) - 1), 0u);
  EXPECT_EQ(map.of(1u << 14), 1u);
  EXPECT_EQ(map.of((1u << 16) - 1), 3u);
  // Regions are monotone in id.
  std::size_t prev = 0;
  for (Id id = 0; id < (1u << 16); id += 97) {
    std::size_t s = map.of(id);
    EXPECT_GE(s, prev);
    EXPECT_LT(s, 4u);
    prev = s;
  }
}

// Cross-shard ping-pong: two shards bounce an event back and forth with
// latency L; the trace must be the exact alternating time sequence.
TEST(ShardGroup, CrossShardHandOffPreservesTimeOrder) {
  const SimTime kL = 5.0;
  ShardGroup group(2, kL);
  runtime::ShardTeam team(2);

  std::vector<std::pair<int, SimTime>> trace;  // (shard, time); shard 0 only
  // Ping-pong closure chain: shard 0 at t, shard 1 at t + L, ...
  struct Bouncer {
    ShardGroup* g;
    std::vector<std::pair<int, SimTime>>* trace;
    int left;
    void bounce(std::size_t s) {
      // Only shard 0's lane writes the trace (its own events).
      if (s == 0) trace->emplace_back(0, g->sim(0).now());
      if (--left <= 0) return;
      const std::size_t d = 1 - s;
      g->post(s, d, g->sim(s).now() + 5.0,
              [this, d] { bounce(d); });
    }
  };
  Bouncer b{&group, &trace, 8};
  group.sim(0).after(1.0, [&b] { b.bounce(0); });
  const std::uint64_t events = group.run_until_quiet(team);

  EXPECT_EQ(events, 8u);
  ASSERT_EQ(trace.size(), 4u);  // every other bounce lands on shard 0
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_DOUBLE_EQ(trace[i].second, 1.0 + 2 * 5.0 * static_cast<double>(i));
  }
}

TEST(ShardGroup, RunUntilAdvancesEveryClock) {
  ShardGroup group(3, 2.0);
  runtime::ShardTeam team(3);
  int fired = 0;
  group.sim(1).after(10.0, [&fired] { ++fired; });
  group.run_until(team, 50.0);
  EXPECT_EQ(fired, 1);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_DOUBLE_EQ(group.sim(s).now(), 50.0);
  }
  // A later event stays pending past the horizon.
  group.sim(2).after(100.0, [&fired] { ++fired; });
  group.run_until(team, 60.0);
  EXPECT_EQ(fired, 1);
}

// Deterministic replay: an irregular cross-shard cascade produces the
// same per-shard execution counts and final clocks on every run.
TEST(ShardGroup, FixedShardCountIsDeterministic) {
  auto run_once = [](std::vector<std::uint64_t>& counts) {
    const std::size_t kShards = 4;
    ShardGroup group(kShards, 3.0);
    runtime::ShardTeam team(kShards);
    // A little deterministic storm: each event reschedules two children
    // on pseudo-random shards until a depth budget runs out.
    struct Storm {
      ShardGroup* g;
      void fire(std::size_t s, std::uint64_t key, int depth) {
        if (depth >= 6) return;
        for (int c = 0; c < 2; ++c) {
          std::uint64_t k = key * 6364136223846793005ULL + 1442695040888963407ULL + static_cast<std::uint64_t>(c);
          const std::size_t d = static_cast<std::size_t>(k >> 62);
          const SimTime dt = 3.0 + static_cast<double>((k >> 20) & 1023) / 256.0;
          const SimTime t = g->sim(s).now() + dt;
          auto ev = [this, d, k, depth] { fire(d, k, depth + 1); };
          if (d == s) {
            g->sim(s).at(t, ev);
          } else {
            g->post(s, d, t, ev);
          }
        }
      }
    };
    Storm storm{&group};
    group.sim(0).after(0.5, [&storm] { storm.fire(0, 0x12345, 0); });
    group.run_until_quiet(team);
    counts.clear();
    for (std::size_t s = 0; s < kShards; ++s) {
      counts.push_back(group.sim(s).events_executed());
    }
  };
  std::vector<std::uint64_t> a, b;
  run_once(a);
  run_once(b);
  EXPECT_EQ(a, b);
  std::uint64_t total = 0;
  for (std::uint64_t c : a) total += c;
  EXPECT_EQ(total, 1u + 2 + 4 + 8 + 16 + 32 + 64);  // full binary cascade
}

// One shard stepped through lookahead windows must execute the exact
// event order of a plain serial Simulator.
TEST(ShardGroup, SingleShardMatchesSerialSimulator) {
  auto workload = [](auto&& schedule) {
    // Events that spawn sub-events at fractional times, exercising the
    // late-arrival path within a slot.
    for (int i = 0; i < 20; ++i) {
      schedule(static_cast<SimTime>(i) * 1.7, i);
    }
  };
  std::vector<int> serial_order, sharded_order;

  Simulator plain;
  workload([&](SimTime t, int tag) {
    plain.at(t, [&plain, &serial_order, tag] {
      serial_order.push_back(tag);
      plain.after(0.25, [&serial_order, tag] {
        serial_order.push_back(1000 + tag);
      });
    });
  });
  plain.run();

  ShardGroup group(1, 0.0);  // zero lookahead is legal at S = 1
  runtime::ShardTeam team(1);
  Simulator& sim = group.sim(0);
  workload([&](SimTime t, int tag) {
    sim.at(t, [&sim, &sharded_order, tag] {
      sharded_order.push_back(tag);
      sim.after(0.25, [&sharded_order, tag] {
        sharded_order.push_back(1000 + tag);
      });
    });
  });
  group.run_until_quiet(team);

  EXPECT_EQ(serial_order, sharded_order);
}

}  // namespace
}  // namespace cam
