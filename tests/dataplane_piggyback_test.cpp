// Oracle-vs-piggyback depth transport regression (ISSUE 7 satellite 4).
//
// The BackpressureForwarder's default depth advertisements are an
// oracle: the child's backlog value rides inside the forwarder's own
// kDepthReport/kDepthArrive event pair. proto::DepthFeed replaces the
// payload with the asynchronous stack's queue-depth piggyback: the
// child publishes via HostBus::set_local_depth and posts a heartbeat
// datagram; the parent's view is whatever the bus has actually
// delivered. Over a LOSSLESS bus driven by the same LatencyModel as the
// forwarder, the delivered value and its timing are exactly the
// oracle's — so a full congested run must produce a ForwardStats that
// matches the oracle run field for field. Under loss the views go stale
// but the plane must still deliver everything exactly once.
#include <vector>

#include <gtest/gtest.h>

#include "dataplane/forwarder.h"
#include "multicast/tree.h"
#include "proto/depth_feed.h"
#include "proto/host_bus.h"
#include "sim/latency.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "stream/streaming.h"

namespace cam {
namespace {

using dataplane::BackpressureForwarder;
using dataplane::ForwarderConfig;
using dataplane::ForwardStats;
using dataplane::TrafficSpec;

// A three-level tree with a slow interior relay: node 1 serves three
// children on a thin uplink, so real backlog builds, depth reports
// matter, and the gradient machinery (service deviation, delegation)
// actually consumes the advertised values.
MulticastTree congested_tree() {
  MulticastTree tree(0);
  tree.record(0, 1, 1);
  tree.record(0, 2, 1);
  tree.record(1, 3, 2);
  tree.record(1, 4, 2);
  tree.record(1, 5, 2);
  tree.record(2, 6, 2);
  tree.record(2, 7, 2);
  tree.record(4, 8, 3);
  tree.record(6, 9, 3);
  return tree;
}

double uplink_of(Id x) {
  if (x == 1) return 400.0;   // the hotspot
  if (x == 0) return 2000.0;  // source feeds faster than 1 drains
  return 1200.0;
}

TrafficSpec traffic() {
  TrafficSpec t;
  t.packet_bytes = 1250;
  t.num_packets = 64;
  return t;
}

ForwardStats run_oracle(const MulticastTree& tree,
                        const LatencyModel& latency, ForwarderConfig cfg) {
  BackpressureForwarder fwd(tree, latency, cfg);
  fwd.resolve_uplinks(uplink_of);
  return fwd.run(traffic());
}

void expect_same_stats(const ForwardStats& a, const ForwardStats& b) {
  EXPECT_EQ(a.session.session_rate_kbps, b.session.session_rate_kbps);
  EXPECT_EQ(a.session.completion_ms, b.session.completion_ms);
  EXPECT_EQ(a.session.mean_rate_kbps, b.session.mean_rate_kbps);
  EXPECT_EQ(a.session.max_first_packet_ms, b.session.max_first_packet_ms);
  EXPECT_EQ(a.session.receivers, b.session.receivers);
  EXPECT_EQ(a.packets_emitted, b.packets_emitted);
  EXPECT_EQ(a.copies_sent, b.copies_sent);
  EXPECT_EQ(a.copies_delivered, b.copies_delivered);
  EXPECT_EQ(a.copies_expected, b.copies_expected);
  EXPECT_EQ(a.delegated_copies, b.delegated_copies);
  EXPECT_EQ(a.zombie_copies, b.zombie_copies);
  EXPECT_EQ(a.admission_pauses, b.admission_pauses);
  EXPECT_EQ(a.admission_paused_ms, b.admission_paused_ms);
  EXPECT_EQ(a.max_backlog_ms, b.max_backlog_ms);
}

TEST(DataplanePiggyback, LosslessBusMatchesOracleFieldForField) {
  const MulticastTree tree = congested_tree();
  const ConstantLatency latency(5.0);
  ForwarderConfig cfg;
  cfg.backpressure = true;

  const ForwardStats oracle = run_oracle(tree, latency, cfg);
  // The run really was congested: advertised depths were live inputs,
  // not a stream of zeros that any transport would reproduce.
  EXPECT_GT(oracle.max_backlog_ms, 0.0);

  // Piggyback run: heartbeats ride a real HostBus over the SAME latency
  // model, so each depth lands at its parent at the oracle's instant.
  Simulator sim;
  Network net(sim, latency);
  proto::HostBus bus(net);
  proto::DepthFeed feed(bus);
  for (const auto& [child, rec] : tree.entries()) {
    if (child != tree.source()) feed.register_edge(child, rec.parent);
  }

  BackpressureForwarder fwd(tree, latency, cfg);
  fwd.resolve_uplinks(uplink_of);
  fwd.set_depth_feed(feed.hooks());
  const ForwardStats piggy = fwd.run(traffic());

  expect_same_stats(oracle, piggy);
  EXPECT_GT(feed.heartbeats_sent(), 0u);
  EXPECT_EQ(bus.messages_dropped(), 0u);
}

TEST(DataplanePiggyback, AdmissionControlAlsoMatchesOracle) {
  // Watermarked run: pauses derive from the advertised depths, so the
  // pause count and gated time pin the transport's timing too.
  const MulticastTree tree = congested_tree();
  const ConstantLatency latency(5.0);
  ForwarderConfig cfg;
  cfg.backpressure = true;
  cfg.admission_high_ms = 60.0;
  cfg.admission_low_ms = 20.0;

  const ForwardStats oracle = run_oracle(tree, latency, cfg);
  EXPECT_GT(oracle.admission_pauses, 0u);

  Simulator sim;
  Network net(sim, latency);
  proto::HostBus bus(net);
  proto::DepthFeed feed(bus);
  for (const auto& [child, rec] : tree.entries()) {
    if (child != tree.source()) feed.register_edge(child, rec.parent);
  }
  BackpressureForwarder fwd(tree, latency, cfg);
  fwd.resolve_uplinks(uplink_of);
  fwd.set_depth_feed(feed.hooks());
  expect_same_stats(oracle, fwd.run(traffic()));
}

TEST(DataplanePiggyback, LossyBusStaysCorrectJustStaler) {
  // With half the heartbeats lost the parents act on stale views — the
  // schedule may differ from the oracle, but delivery is still exactly
  // once and complete: depth advertisements are an optimization signal,
  // never a correctness dependency.
  const MulticastTree tree = congested_tree();
  const ConstantLatency latency(5.0);
  ForwarderConfig cfg;
  cfg.backpressure = true;

  Simulator sim;
  Network net(sim, latency);
  proto::HostBus bus(net);
  bus.set_loss(0.5, 1234);
  proto::DepthFeed feed(bus);
  for (const auto& [child, rec] : tree.entries()) {
    if (child != tree.source()) feed.register_edge(child, rec.parent);
  }
  BackpressureForwarder fwd(tree, latency, cfg);
  fwd.resolve_uplinks(uplink_of);
  fwd.set_depth_feed(feed.hooks());
  const ForwardStats lossy = fwd.run(traffic());

  EXPECT_EQ(lossy.copies_delivered, lossy.copies_expected);
  EXPECT_EQ(lossy.session.receivers, tree.size() - 1);
  EXPECT_GT(bus.loss_drops(), 0u);
}

}  // namespace
}  // namespace cam
