#include "util/intmath.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace cam {
namespace {

TEST(IntMath, Ilog2Basics) {
  EXPECT_EQ(ilog2(1), 0);
  EXPECT_EQ(ilog2(2), 1);
  EXPECT_EQ(ilog2(3), 1);
  EXPECT_EQ(ilog2(4), 2);
  EXPECT_EQ(ilog2(1023), 9);
  EXPECT_EQ(ilog2(1024), 10);
  EXPECT_EQ(ilog2(UINT64_MAX), 63);
}

TEST(IntMath, IlogMatchesDefinition) {
  // floor(log_base v): base^e <= v < base^{e+1}, checked exhaustively for
  // small values and at power boundaries for large ones.
  for (std::uint64_t base : {2ULL, 3ULL, 5ULL, 7ULL, 10ULL}) {
    for (std::uint64_t v = 1; v <= 2000; ++v) {
      int e = ilog(v, base);
      EXPECT_LE(ipow_sat(base, static_cast<unsigned>(e)), v);
      EXPECT_GT(ipow_sat(base, static_cast<unsigned>(e + 1)), v);
    }
  }
}

TEST(IntMath, IlogAtExactPowers) {
  for (std::uint64_t base : {2ULL, 3ULL, 6ULL, 17ULL}) {
    std::uint64_t p = 1;
    for (int e = 0; p <= UINT64_MAX / base; ++e, p *= base) {
      EXPECT_EQ(ilog(p, base), e) << "base=" << base << " p=" << p;
      if (p > 1) {
        EXPECT_EQ(ilog(p - 1, base), e - 1);
      }
    }
  }
}

TEST(IntMath, IlogBase2Consistent) {
  for (std::uint64_t v : {1ULL, 2ULL, 7ULL, 4096ULL, (1ULL << 19) - 1}) {
    EXPECT_EQ(ilog(v, 2), ilog2(v));
  }
}

TEST(IntMath, IpowSatExact) {
  EXPECT_EQ(ipow_sat(3, 0), 1u);
  EXPECT_EQ(ipow_sat(3, 4), 81u);
  EXPECT_EQ(ipow_sat(2, 63), 1ULL << 63);
  EXPECT_EQ(ipow_sat(10, 19), 10000000000000000000ULL);
}

TEST(IntMath, IpowSatSaturates) {
  EXPECT_EQ(ipow_sat(2, 64), UINT64_MAX);
  EXPECT_EQ(ipow_sat(10, 20), UINT64_MAX);
  EXPECT_EQ(ipow_sat(UINT64_MAX, 2), UINT64_MAX);
}

TEST(IntMath, IpowZeroBase) {
  EXPECT_EQ(ipow_sat(0, 0), 1u);
  EXPECT_EQ(ipow_sat(0, 5), 0u);
}

TEST(IntMath, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 3), 0u);
  EXPECT_EQ(ceil_div(1, 3), 1u);
  EXPECT_EQ(ceil_div(3, 3), 1u);
  EXPECT_EQ(ceil_div(4, 3), 2u);
  EXPECT_EQ(ceil_div(UINT64_MAX, 1), UINT64_MAX);
}

TEST(IntMath, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(1ULL << 62));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(6));
  EXPECT_FALSE(is_pow2((1ULL << 62) + 1));
}

}  // namespace
}  // namespace cam
