// HostBus fault hooks: the uniform-loss knob's determinism across
// re-configuration, the shaper's drop/duplicate/delay protocol, and the
// RPC request/response causality assumption documented in
// proto/messages.h — all at the bus layer, with hand-rolled handlers.
#include <gtest/gtest.h>

#include <vector>

#include "proto/host_bus.h"
#include "util/rng.h"

namespace cam::proto {
namespace {

struct BusFixture {
  Simulator sim;
  ConstantLatency lat{5.0};
  Network net{sim, lat};
  HostBus bus{net};
};

Message ping_msg() { return RpcRequest{1, PingReq{}}; }

// Posts `count` tagged pings 1ms apart and returns, per posting slot,
// whether that datagram survived the loss knob.
std::vector<bool> delivery_pattern(HostBus& bus, Simulator& sim, int count) {
  std::vector<bool> delivered(count, false);
  bus.attach(1, [](Id, Message) {});
  bus.attach(2, [&](Id, Message msg) {
    delivered[std::get<RpcRequest>(msg).id] = true;
  });
  for (int i = 0; i < count; ++i) {
    bus.post(1, 2, RpcRequest{static_cast<RpcId>(i), PingReq{}}, 64);
    sim.run_until(sim.now() + 1);
  }
  sim.run_until(sim.now() + 100);
  return delivered;
}

TEST(HostBusFault, SetLossRepeatedConfigurationKeepsOriginalStream) {
  // Reference: one configuration, 200 posts.
  BusFixture a;
  a.bus.set_loss(0.3, 77);
  std::vector<bool> reference = delivery_pattern(a.bus, a.sim, 200);
  std::uint64_t ref_drops = a.bus.loss_drops();

  // Same run, but the identical configuration is re-applied mid-stream
  // (as a fault plan re-entering a phase would). The drop stream must
  // continue, not restart: re-seeding on every call would replay the
  // first 100 decisions.
  BusFixture b;
  b.bus.set_loss(0.3, 77);
  std::vector<bool> first_half = delivery_pattern(b.bus, b.sim, 100);
  b.bus.set_loss(0.3, 77);  // re-configure: must be a no-op for the RNG
  std::vector<bool> second_half = delivery_pattern(b.bus, b.sim, 100);

  std::vector<bool> combined = first_half;
  combined.insert(combined.end(), second_half.begin(), second_half.end());
  EXPECT_EQ(combined, reference);
  EXPECT_EQ(b.bus.loss_drops(), ref_drops);
}

TEST(HostBusFault, SetLossNewSeedReseeds) {
  BusFixture a;
  a.bus.set_loss(0.5, 1);
  std::vector<bool> run1 = delivery_pattern(a.bus, a.sim, 100);

  BusFixture b;
  b.bus.set_loss(0.5, 2);
  std::vector<bool> run2 = delivery_pattern(b.bus, b.sim, 100);
  EXPECT_NE(run1, run2);  // different seed, different stream

  // Changing the seed mid-run re-seeds deterministically.
  BusFixture c;
  c.bus.set_loss(0.5, 1);
  (void)delivery_pattern(c.bus, c.sim, 40);
  c.bus.set_loss(0.5, 2);
  std::vector<bool> tail1 = delivery_pattern(c.bus, c.sim, 60);

  BusFixture d;
  d.bus.set_loss(0.5, 1);
  (void)delivery_pattern(d.bus, d.sim, 40);
  d.bus.set_loss(0.5, 2);
  std::vector<bool> tail2 = delivery_pattern(d.bus, d.sim, 60);
  EXPECT_EQ(tail1, tail2);
}

TEST(HostBusFault, ShaperDropsDuplicatesAndDelays) {
  BusFixture fx;
  int arrivals = 0;
  SimTime last_arrival = 0;
  fx.bus.attach(1, [](Id, Message) {});
  fx.bus.attach(2, [&](Id, Message) {
    ++arrivals;
    last_arrival = fx.sim.now();
  });

  // Drop: empty delays vector.
  fx.bus.set_shaper([](Id, Id, const Message&, std::size_t, MsgClass,
                       std::vector<SimTime>& d) { d.clear(); });
  fx.bus.post(1, 2, ping_msg(), 64);
  fx.sim.run_until(fx.sim.now() + 50);
  EXPECT_EQ(arrivals, 0);

  // Duplicate: two extra copies -> three arrivals.
  fx.bus.set_shaper([](Id, Id, const Message&, std::size_t, MsgClass,
                       std::vector<SimTime>& d) {
    d.push_back(10);
    d.push_back(20);
  });
  fx.bus.post(1, 2, ping_msg(), 64);
  fx.sim.run_until(fx.sim.now() + 50);
  EXPECT_EQ(arrivals, 3);

  // Delay: the primary copy arrives latency + extra later.
  arrivals = 0;
  fx.bus.set_shaper([](Id, Id, const Message&, std::size_t, MsgClass,
                       std::vector<SimTime>& d) { d[0] += 100; });
  SimTime posted_at = fx.sim.now();
  fx.bus.post(1, 2, ping_msg(), 64);
  fx.sim.run_until(fx.sim.now() + 200);
  EXPECT_EQ(arrivals, 1);
  EXPECT_DOUBLE_EQ(last_arrival, posted_at + 5.0 + 100);

  // Uninstall: back to plain delivery.
  fx.bus.set_shaper({});
  arrivals = 0;
  fx.bus.post(1, 2, ping_msg(), 64);
  fx.sim.run_until(fx.sim.now() + 50);
  EXPECT_EQ(arrivals, 1);
}

// The messages.h causality assumption: under aggressive duplication and
// randomized extra delay on *every* datagram, a reply never reaches the
// caller before its request reached the callee, for every RPC id and
// every duplicated copy.
TEST(HostBusFault, RpcPairsStayCausalUnderDuplicationAndReorder) {
  Simulator sim;
  UniformLatency lat(1, 30, 99);  // per-message random latency
  Network net(sim, lat);
  HostBus bus(net);

  Rng rng(1234);
  bus.set_shaper([&](Id, Id, const Message&, std::size_t, MsgClass,
                     std::vector<SimTime>& d) {
    d[0] += rng.next_double() * 50;            // reorder window
    if (rng.chance(0.5)) {
      d.push_back(rng.next_double() * 50);     // duplicate copy
    }
  });

  std::unordered_map<RpcId, SimTime> req_delivered;  // earliest at callee
  std::unordered_map<RpcId, SimTime> rep_delivered;  // earliest at caller
  // Callee: answers every request copy immediately (a duplicated request
  // is answered twice — the pending table absorbs the extra reply).
  bus.attach(2, [&](Id from, Message msg) {
    const auto& req = std::get<RpcRequest>(msg);
    if (!req_delivered.contains(req.id)) {
      req_delivered[req.id] = sim.now();
    }
    bus.post(2, from, RpcReply{req.id, PingRep{}}, 64);
  });
  bus.attach(1, [&](Id, Message msg) {
    const auto& rep = std::get<RpcReply>(msg);
    if (!rep_delivered.contains(rep.id)) {
      rep_delivered[rep.id] = sim.now();
    }
  });

  for (RpcId id = 1; id <= 300; ++id) {
    sim.at(sim.now(), [&bus, id] {
      bus.post(1, 2, RpcRequest{id, PingReq{}}, 64);
    });
    sim.run_until(sim.now() + 7);  // overlapping in-flight windows
  }
  sim.run_until(sim.now() + 500);

  ASSERT_EQ(req_delivered.size(), 300u);  // nothing dropped here
  ASSERT_EQ(rep_delivered.size(), 300u);
  for (RpcId id = 1; id <= 300; ++id) {
    EXPECT_GE(rep_delivered[id], req_delivered[id])
        << "reply for rpc " << id << " outran its request";
  }
}

// Queue-depth piggyback (DESIGN.md §11): a host that publishes its
// uplink backlog has it carried on every datagram it posts, snapshotted
// at post time; hosts that never publish leave the receiver's view
// untouched.
TEST(HostBusFault, DepthPiggybacksOnDatagrams) {
  BusFixture f;
  int delivered = 0;
  f.bus.attach(1, [](Id, Message) {});
  f.bus.attach(2, [&](Id, Message) { ++delivered; });

  // No publication yet: delivery records nothing.
  f.bus.post(1, 2, ping_msg(), 64);
  f.sim.run_until(f.sim.now() + 50);
  ASSERT_EQ(delivered, 1);
  EXPECT_EQ(f.bus.advertised_depth(2, 1), 0.0);

  f.bus.set_local_depth(1, 120.0);
  EXPECT_EQ(f.bus.local_depth(1), 120.0);
  f.bus.post(1, 2, ping_msg(), 64);
  // The depth travels with the datagram already in flight: changing the
  // local value after post() must not alter what arrives.
  f.bus.set_local_depth(1, 999.0);
  f.sim.run_until(f.sim.now() + 50);
  ASSERT_EQ(delivered, 2);
  EXPECT_EQ(f.bus.advertised_depth(2, 1), 120.0);

  // Later datagrams carry the updated snapshot and overwrite the view;
  // the reverse direction (2's view of nothing-published hosts) and an
  // unrelated observer stay at the "never heard" default.
  f.bus.post(1, 2, ping_msg(), 64);
  f.sim.run_until(f.sim.now() + 50);
  EXPECT_EQ(f.bus.advertised_depth(2, 1), 999.0);
  EXPECT_EQ(f.bus.advertised_depth(1, 2), 0.0);
  EXPECT_EQ(f.bus.advertised_depth(3, 1), 0.0);
}

}  // namespace
}  // namespace cam::proto
