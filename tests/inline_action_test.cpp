// InlineAction: capture sizes straddling the inline threshold, move
// semantics, and construct/destroy balance (no leaks, no double-runs).
#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <memory>
#include <utility>

#include "sim/inline_action.h"

namespace cam {
namespace {

// Instance-counting payload of tunable size.
template <std::size_t Pad>
struct Counted {
  static int live;
  static int ctors;
  static int dtors;
  static void reset() { live = ctors = dtors = 0; }

  int* fired;
  std::array<unsigned char, Pad> pad{};

  explicit Counted(int* f) : fired(f) {
    ++live;
    ++ctors;
  }
  Counted(const Counted& o) : fired(o.fired), pad(o.pad) {
    ++live;
    ++ctors;
  }
  Counted(Counted&& o) noexcept : fired(o.fired), pad(o.pad) {
    ++live;
    ++ctors;
  }
  ~Counted() {
    ++live, --live;  // keep the compiler from eliding the dtor body
    --live;
    ++dtors;
  }
  void operator()() { ++*fired; }
};
template <std::size_t Pad>
int Counted<Pad>::live = 0;
template <std::size_t Pad>
int Counted<Pad>::ctors = 0;
template <std::size_t Pad>
int Counted<Pad>::dtors = 0;

using Small = Counted<16>;                            // far below threshold
using AtLimit = Counted<InlineAction::kInlineSize - sizeof(int*) -
                        (InlineAction::kInlineSize - sizeof(int*)) % 8>;
using Oversized = Counted<InlineAction::kInlineSize + 64>;  // heap fallback

TEST(InlineAction, StorageClassStraddlesThreshold) {
  static_assert(InlineAction::kInlineSize >= 48,
                "design contract: inline capacity of at least 48 bytes");
  EXPECT_TRUE(InlineAction::stored_inline<Small>());
  static_assert(sizeof(AtLimit) <= InlineAction::kInlineSize);
  EXPECT_TRUE(InlineAction::stored_inline<AtLimit>());
  static_assert(sizeof(Oversized) > InlineAction::kInlineSize);
  EXPECT_FALSE(InlineAction::stored_inline<Oversized>());
}

// The engine's reason-for-being: the closures the protocol stack
// schedules every event must be inline. Mirrors HostBus::deliver's
// capture (this + from + to + a ~64-byte message payload by value).
TEST(InlineAction, HotPathShapedClosuresAreInline) {
  struct FakeMessage {
    unsigned char bytes[64];
  };
  void* self = nullptr;
  std::uint64_t from = 1, to = 2;
  FakeMessage m{};
  auto deliver = [self, from, to, m]() {
    (void)self, (void)from, (void)to, (void)m;
  };
  EXPECT_TRUE(InlineAction::stored_inline<decltype(deliver)>());
}

template <typename Payload>
void run_lifecycle_checks() {
  Payload::reset();
  int fired = 0;
  {
    InlineAction a{Payload(&fired)};
    EXPECT_TRUE(static_cast<bool>(a));
    a();
    EXPECT_EQ(fired, 1);

    // Move construction transfers the callable; the source goes empty.
    InlineAction b{std::move(a)};
    EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
    b();
    EXPECT_EQ(fired, 2);

    // Move assignment destroys the target's old payload.
    InlineAction c{Payload(&fired)};
    c = std::move(b);
    EXPECT_FALSE(static_cast<bool>(b));  // NOLINT(bugprone-use-after-move)
    c();
    EXPECT_EQ(fired, 3);
  }
  EXPECT_EQ(Payload::live, 0) << "payloads leaked or double-destroyed";
  EXPECT_EQ(Payload::ctors, Payload::dtors);
}

TEST(InlineAction, LifecycleInline) { run_lifecycle_checks<Small>(); }
TEST(InlineAction, LifecycleAtLimit) { run_lifecycle_checks<AtLimit>(); }
TEST(InlineAction, LifecycleHeapFallback) { run_lifecycle_checks<Oversized>(); }

TEST(InlineAction, MoveOnlyCapturesWork) {
  auto p = std::make_unique<int>(41);
  int got = 0;
  InlineAction a{[p = std::move(p), &got] { got = *p + 1; }};
  InlineAction b{std::move(a)};
  b();
  EXPECT_EQ(got, 42);
}

TEST(InlineAction, DefaultConstructedIsEmpty) {
  InlineAction a;
  EXPECT_FALSE(static_cast<bool>(a));
  a = InlineAction{[] {}};
  EXPECT_TRUE(static_cast<bool>(a));
}

TEST(InlineAction, SelfMoveAssignIsSafe) {
  Small::reset();
  int fired = 0;
  InlineAction a{Small(&fired)};
  InlineAction& ref = a;
  a = std::move(ref);
  ASSERT_TRUE(static_cast<bool>(a));
  a();
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace cam
