// Integration tests: the telemetry subsystem attached to the live async
// protocol stack. The trace must agree with the stack's own ground
// truth — the recorded MulticastTree, the strike bookkeeping, and the
// HostBus drop counters — not merely be plausible.
#include <gtest/gtest.h>

#include <map>
#include <utility>

#include "proto/async_camchord.h"
#include "proto/async_camkoorde.h"
#include "telemetry/sink.h"
#include "telemetry/trace.h"
#include "util/rng.h"

namespace cam::proto {
namespace {

using telemetry::EventType;
using telemetry::TraceEvent;

template <typename Net>
struct Fixture {
  RingSpace ring{16};
  Simulator sim;
  UniformLatency lat{5, 25, 17};
  Network net{sim, lat};
  HostBus bus{net};
  Net overlay;
  Rng rng{31};

  explicit Fixture(AsyncConfig cfg = {}) : overlay{ring, bus, cfg} {}

  NodeInfo info() {
    return NodeInfo{static_cast<std::uint32_t>(rng.uniform(4, 10)),
                    400 + rng.next_double() * 600};
  }

  void grow(std::size_t n) {
    Id first = rng.next_below(ring.size());
    overlay.bootstrap(first, info());
    overlay.run_for(500);
    while (overlay.size() < n) {
      Id id = rng.next_below(ring.size());
      if (overlay.running(id)) continue;
      auto members = overlay.members_sorted();
      overlay.spawn(id, info(), members[rng.next_below(members.size())]);
      overlay.run_for(300);
    }
    SimTime deadline = sim.now() + 240'000;
    while (sim.now() < deadline && overlay.ring_consistency() < 1.0) {
      overlay.run_for(2'000);
    }
    overlay.run_for(60'000);
  }
};

TEST(TelemetryIntegration, TracedMulticastReplaysToRecordedTree) {
  telemetry::Registry reg;  // sinks outlive the fixture's overlay
  telemetry::Tracer tracer(1 << 16, telemetry::kMilestoneEvents);
  Fixture<AsyncCamChordNet> fx;
  fx.grow(30);

  fx.overlay.set_telemetry({&reg, &tracer});

  Id source = fx.overlay.members_sorted()[2];
  MulticastTree tree = fx.overlay.multicast(source);
  ASSERT_EQ(tree.size(), fx.overlay.size());
  EXPECT_EQ(tracer.dropped(), 0u);

  std::uint64_t stream = fx.overlay.last_stream_id();
  auto events = tracer.events();
  std::size_t delivers = 0;
  for (const auto& e : events) {
    if (e.type == EventType::kMulticastDeliver && e.a == stream) ++delivers;
  }
  // Exactly one delivery event per reached node, mirrored in the
  // registry's per-node counter family.
  EXPECT_EQ(delivers, tree.size());
  EXPECT_EQ(reg.value("mc.delivered"), tree.size());

  auto replayed = telemetry::replay_multicast(events, stream);
  ASSERT_EQ(replayed.size(), tree.entries().size());
  for (const auto& [id, rec] : tree.entries()) {
    auto it = replayed.find(id);
    ASSERT_NE(it, replayed.end()) << "node " << id << " missing from replay";
    EXPECT_EQ(it->second.parent, rec.parent) << "node " << id;
    EXPECT_EQ(it->second.depth, rec.depth) << "node " << id;
  }
}

TEST(TelemetryIntegration, TimeoutEventsMatchStrikeBookkeeping) {
  // Registry + tracer attached at the same instant (after growth): from
  // then on every traced timeout has a counted twin. The mask keeps the
  // high-rate kRpcIssue stream out but admits the suspicion triple.
  // Declared before the fixture so the sinks outlive the overlay.
  telemetry::Registry reg;
  telemetry::EventMask mask = telemetry::event_bit(EventType::kRpcTimeout) |
                              telemetry::event_bit(EventType::kSuspect) |
                              telemetry::event_bit(EventType::kAbsolve);
  telemetry::Tracer tracer(1 << 16, mask);

  AsyncConfig cfg;
  Fixture<AsyncCamChordNet> fx(cfg);
  fx.grow(25);
  fx.overlay.set_telemetry({&reg, &tracer});

  fx.bus.set_loss(0.20, 99);
  fx.overlay.run_for(45'000);
  ASSERT_EQ(tracer.dropped(), 0u);

  auto events = tracer.events();
  std::size_t timeout_events = 0;
  // Timeouts since the last absolve, per (node, peer) edge.
  std::map<std::pair<Id, Id>, int> window;
  for (const auto& e : events) {
    switch (e.type) {
      case EventType::kRpcTimeout:
        ++timeout_events;
        ++window[{e.node, e.peer}];
        break;
      case EventType::kSuspect:
        // Suspicion is only declared once the strike threshold is hit:
        // the trace itself must show enough preceding timeouts.
        EXPECT_GE((window[{e.node, e.peer}]), cfg.suspect_after_strikes)
            << e.node << " suspected " << e.peer << " early at t=" << e.time;
        break;
      case EventType::kAbsolve:
        window[{e.node, e.peer}] = 0;
        break;
      default:
        break;
    }
  }
  EXPECT_GT(timeout_events, 0u) << "20% loss should time out some RPCs";
  EXPECT_EQ(timeout_events, reg.value("rpc.timeouts"));

  // The split HostBus drop counters agree with the registry and with
  // each other: only loss drops here, nobody has crashed.
  EXPECT_GT(fx.bus.loss_drops(), 0u);
  EXPECT_EQ(reg.value("bus.drops.loss"), fx.bus.loss_drops());
  EXPECT_EQ(fx.bus.detached_drops(), 0u);

  // Crash a member and keep running: its peers' datagrams now land on a
  // detached host and must be counted on the other ledger.
  fx.bus.set_loss(0, 99);
  fx.overlay.crash(fx.overlay.members_sorted()[0]);
  fx.overlay.run_for(10'000);
  EXPECT_GT(fx.bus.detached_drops(), 0u);
  EXPECT_EQ(reg.value("bus.drops.detached"), fx.bus.detached_drops());
}

TEST(TelemetryIntegration, SeenStreamsEvictAfterHorizon) {
  AsyncConfig cfg;
  cfg.stream_seen_ttl_ms = 5'000;
  Fixture<AsyncCamChordNet> fx(cfg);
  fx.grow(15);

  Id source = fx.overlay.members_sorted()[0];
  MulticastTree tree = fx.overlay.multicast(source);
  ASSERT_EQ(tree.size(), fx.overlay.size());

  std::size_t remembered = 0;
  for (Id id : fx.overlay.members_sorted()) {
    remembered += fx.overlay.node(id).seen_stream_count();
  }
  EXPECT_EQ(remembered, tree.size())
      << "every reached node should remember the stream right after";

  // Past the horizon the stabilize sweep forgets the stream everywhere.
  fx.overlay.run_for(cfg.stream_seen_ttl_ms + 5'000);
  for (Id id : fx.overlay.members_sorted()) {
    EXPECT_EQ(fx.overlay.node(id).seen_stream_count(), 0u) << "node " << id;
  }
}

TEST(TelemetryIntegration, KoordeFloodTracesDupSuppression) {
  telemetry::Registry reg;  // sinks outlive the fixture's overlay
  telemetry::Tracer tracer(1 << 16, telemetry::kMilestoneEvents);
  Fixture<AsyncCamKoordeNet> fx;
  fx.grow(25);

  fx.overlay.set_telemetry({&reg, &tracer});

  Id source = fx.overlay.members_sorted()[1];
  MulticastTree tree = fx.overlay.multicast(source);
  ASSERT_EQ(tree.size(), fx.overlay.size());

  std::uint64_t stream = fx.overlay.last_stream_id();
  std::size_t suppress_events = 0;
  for (const auto& e : tracer.events()) {
    if (e.type == EventType::kDupSuppress && e.a == stream) {
      ++suppress_events;
    }
  }
  // Flooding the de Bruijn graph produces redundant copies; each one is
  // caught either on arrival (dedupe) or before sending (dup-check), and
  // both paths trace. The registry splits them by mechanism.
  EXPECT_GT(suppress_events, 0u);
  EXPECT_EQ(suppress_events, reg.value("mc.dup_suppressed") +
                                 reg.value("mc.dupcheck_suppressed"));

  // Still exactly one delivery per member despite the redundancy.
  auto replayed = telemetry::replay_multicast(tracer.events(), stream);
  EXPECT_EQ(replayed.size(), tree.size());
}

}  // namespace
}  // namespace cam::proto
