// Shared helpers for the test suite: small deterministic populations and
// capacity accessors.
#pragma once

#include <cstdint>

#include "overlay/directory.h"
#include "util/rng.h"
#include "workload/population.h"

namespace cam::test {

/// Uniform-capacity population of n nodes on a 2^bits ring.
inline NodeDirectory make_population(std::size_t n, int bits,
                                     std::uint32_t cap_lo,
                                     std::uint32_t cap_hi,
                                     std::uint64_t seed = 42) {
  workload::PopulationSpec spec;
  spec.n = n;
  spec.ring_bits = bits;
  spec.seed = seed;
  return workload::uniform_capacity_population(spec, cap_lo, cap_hi);
}

/// Capacity accessor over a frozen directory.
inline auto capacity_fn(const FrozenDirectory& dir) {
  return [&dir](Id x) { return dir.info(x).capacity; };
}

}  // namespace cam::test
