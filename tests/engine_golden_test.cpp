// Byte-identity goldens for the event-engine overhaul.
//
// The engine rebuild (InlineAction + timer wheel + flat tables) promises
// byte-identical behavior: the same (time, seq) execution order and the
// same protocol decisions as the std::function + priority_queue +
// unordered_map engine it replaced. These tests pin that promise to
// golden files captured from the PRE-SWAP engine: a serial protocol-mode
// multicast sweep (the parallel_determinism_test grid shape) and two
// full chaos runs, rendered to text with every float printed at full
// precision. Any engine change that reorders events or perturbs a table
// decision shows up as a golden diff, not a silent drift.
//
// Regenerating (only legitimate when the *protocol* intentionally
// changes, never to paper over an engine diff):
//   CAM_REGEN_GOLDENS=1 ./build/tests/cam_tests --gtest_filter='EngineGolden*'
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "experiments/runner.h"
#include "fault/chaos_run.h"
#include "runtime/cells.h"
#include "workload/population.h"

namespace cam {
namespace {

using exp::AveragedRun;

std::string golden_path(const std::string& name) {
  return std::string(CAM_GOLDEN_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Compares `text` to the committed golden byte for byte; with
// CAM_REGEN_GOLDENS=1 rewrites the golden instead (and fails, so a regen
// run is never mistaken for a passing one).
void expect_golden(const std::string& name, const std::string& text) {
  const std::string path = golden_path(name);
  if (std::getenv("CAM_REGEN_GOLDENS") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    out << text;
    FAIL() << "regenerated " << path << " (" << text.size() << " bytes)";
  }
  const std::string want = read_file(path);
  ASSERT_FALSE(want.empty()) << "missing golden " << path;
  EXPECT_EQ(text, want) << "engine output diverged from pre-swap golden "
                        << name;
}

// Renders an AveragedRun with every double at full round-trip precision:
// bit-identical accumulation is the requirement, not approximate equality.
void render_run(std::ostringstream& out, const AveragedRun& r) {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "expected=%zu reached=%zu dups=%llu children=%.17g "
                "degree=%.17g tput=%.17g prov=%.17g path=%.17g depth=%.17g",
                r.expected, r.reached,
                static_cast<unsigned long long>(r.duplicates), r.avg_children,
                r.avg_degree, r.throughput_kbps, r.provisioned_kbps,
                r.avg_path, r.max_depth);
  out << buf << " hist=";
  for (std::size_t i = 0; i < r.depth_histogram.size(); ++i) {
    out << (i == 0 ? "" : ",") << r.depth_histogram[i];
  }
  out << "\n";
}

TEST(EngineGolden, SerialMulticastSweep) {
  std::vector<runtime::CellSpec> cells;
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    for (const char* key : {"camchord", "camkoorde", "chord", "koorde"}) {
      runtime::CellSpec cell;
      cell.strategy = key;
      workload::PopulationSpec spec;
      spec.n = 300;
      spec.ring_bits = 12;
      spec.seed = seed;
      cell.population = runtime::PopulationRecipe::uniform(spec, 4, 10);
      cell.sources = 2;
      cell.seed = seed;
      cell.params.uniform_degree = 8;
      cells.push_back(cell);
    }
  }
  std::vector<AveragedRun> runs = runtime::run_cells(cells, {.jobs = 1});
  std::ostringstream out;
  for (const AveragedRun& r : runs) render_run(out, r);
  expect_golden("multicast_sweep.txt", out.str());
}

TEST(EngineGolden, ChaosCamChord) {
  fault::ChaosConfig cfg;
  cfg.system = "camchord";
  cfg.n = 12;
  cfg.bits = 10;
  cfg.seed = 7;
  fault::ChaosReport rep =
      fault::run_chaos(cfg, fault::default_chaos_plan());
  expect_golden("chaos_camchord.txt", rep.render());
}

TEST(EngineGolden, ChaosCamKoorde) {
  fault::ChaosConfig cfg;
  cfg.system = "camkoorde";
  cfg.n = 12;
  cfg.bits = 10;
  cfg.seed = 7;
  fault::ChaosReport rep =
      fault::run_chaos(cfg, fault::default_chaos_plan());
  expect_golden("chaos_camkoorde.txt", rep.render());
}

}  // namespace
}  // namespace cam
