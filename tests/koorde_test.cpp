#include "koorde/koorde.h"

#include <gtest/gtest.h>

#include <set>

#include "multicast/metrics.h"
#include "test_util.h"
#include "util/rng.h"

namespace cam::koorde {
namespace {

using test::make_population;

TEST(KoordeMath, SpCommonBitsMirrorsPsCommon) {
  RingSpace r(6);
  // Suffix of x matches prefix of k.
  EXPECT_EQ(sp_common_bits(r, 36, 36), 6);
  // x = 100100 suffix "100" (4); k = 100xxx with prefix 100 -> l >= 3.
  EXPECT_GE(sp_common_bits(r, 36, 0b100000), 3);
  EXPECT_EQ(sp_common_bits(r, 36, 0b100101), ps_common_bits(r, 0b100101, 36));
}

TEST(KoordeMath, ShiftIdentifiersClusterInLowBits) {
  // The paper's critique: Koorde's neighbor identifiers "differ only at
  // the last digit. Consequently they are clustered". The second group's
  // t identifiers are consecutive integers.
  RingSpace r(12);
  std::uint32_t deg = 20;  // s = 4, t = 16
  Id x = 1234;
  auto ids = shift_identifiers(r, deg, x);
  ASSERT_GE(ids.size(), 18u);
  for (int i = 0; i < 15; ++i) {
    EXPECT_EQ(ids[static_cast<std::size_t>(2 + i + 1)],
              r.add(ids[static_cast<std::size_t>(2 + i)], 1));
  }
}

TEST(KoordeMath, IdentifierCountIsDegreeMinusTwo) {
  RingSpace r(19);
  for (std::uint32_t deg = 4; deg <= 64; ++deg) {
    EXPECT_EQ(shift_identifiers(r, deg, 98765 % r.size()).size(), deg - 2);
  }
}

TEST(KoordeMath, BaseDeBruijnPointers) {
  RingSpace r(6);
  auto ids = shift_identifiers(r, 4, 36);
  EXPECT_EQ(ids, (std::vector<Id>{r.wrap(72), r.wrap(73)}));
}

TEST(KoordeMath, NeighborClusteringCollapsesOnSparseRings) {
  // On a sparse ring the clustered identifiers resolve to few distinct
  // nodes — the effect CAM-Koorde's right shift avoids.
  NodeDirectory dir = make_population(200, 16, 4, 10);
  FrozenDirectory f = dir.freeze();
  std::uint32_t deg = 20;
  double koorde_distinct = 0;
  for (Id x : f.ids()) {
    koorde_distinct +=
        static_cast<double>(resolved_neighbors(f.ring(), f, deg, x).size());
  }
  koorde_distinct /= static_cast<double>(f.size());
  // 16 clustered de Bruijn identifiers mostly collapse: far fewer than
  // deg distinct neighbors on average.
  EXPECT_LT(koorde_distinct, 0.7 * deg);
}

struct Param {
  std::size_t n;
  int bits;
  std::uint32_t deg;
};

class KoordeProperty : public ::testing::TestWithParam<Param> {};

TEST_P(KoordeProperty, LookupResolvesToResponsibleNode) {
  auto [n, bits, deg] = GetParam();
  NodeDirectory dir = make_population(n, bits, 4, 10);
  FrozenDirectory f = dir.freeze();
  Rng rng(13);
  for (int t = 0; t < 200; ++t) {
    Id from = f.ids()[rng.next_below(f.size())];
    Id k = rng.next_below(f.ring().size());
    auto r = lookup(f.ring(), f, deg, from, k);
    ASSERT_TRUE(r.ok) << "from=" << from << " k=" << k;
    EXPECT_EQ(r.owner, *f.responsible(k));
  }
}

TEST_P(KoordeProperty, FloodReachesEveryone) {
  auto [n, bits, deg] = GetParam();
  NodeDirectory dir = make_population(n, bits, 4, 10);
  FrozenDirectory f = dir.freeze();
  MulticastTree tree = multicast(f.ring(), f, deg, f.ids()[0]);
  EXPECT_EQ(tree.size(), f.size());
  EXPECT_EQ(tree.duplicate_deliveries(), 0u);
  // Children bounded by the uniform degree.
  EXPECT_EQ(capacity_violations(tree, [deg](Id) { return deg; }), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    DegreesAndSizes, KoordeProperty,
    ::testing::Values(Param{100, 12, 4}, Param{500, 16, 4}, Param{500, 16, 8},
                      Param{500, 16, 20}, Param{1000, 19, 6},
                      Param{1000, 19, 32}),
    [](const auto& info) {
      const auto& p = info.param;
      return "n" + std::to_string(p.n) + "b" + std::to_string(p.bits) + "deg" +
             std::to_string(p.deg);
    });

}  // namespace
}  // namespace cam::koorde
