#include "camkoorde/neighbor_math.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "camkoorde/oracle.h"
#include "overlay/directory.h"
#include "util/rng.h"

namespace cam::camkoorde {
namespace {

TEST(CamKoordeMath, ShiftSAndGroupSizes) {
  EXPECT_EQ(shift_s(4), 0);
  EXPECT_EQ(shift_s(5), 0);   // log2(1)
  EXPECT_EQ(shift_s(6), 1);   // log2(2)
  EXPECT_EQ(shift_s(7), 1);   // log2(3)
  EXPECT_EQ(shift_s(8), 2);   // log2(4)
  EXPECT_EQ(shift_s(10), 2);  // log2(6)
  EXPECT_EQ(shift_s(12), 3);  // log2(8)
  EXPECT_EQ(shift_s(20), 4);  // log2(16)

  EXPECT_EQ(second_group_size(4), 0u);
  EXPECT_EQ(second_group_size(5), 0u);   // s = 0, not > 1
  EXPECT_EQ(second_group_size(6), 0u);   // s = 1, not > 1
  EXPECT_EQ(second_group_size(8), 4u);   // s = 2 -> t = 4
  EXPECT_EQ(second_group_size(10), 4u);
  EXPECT_EQ(second_group_size(12), 8u);
}

TEST(CamKoordeMath, Figure4Example) {
  // Node 36 (100100), b = 6, capacity 10:
  //   basic (identifier part): 18 (010010), 50 (110010)
  //   second group: 9, 25, 41, 57
  //   third group: 4, 12
  RingSpace r(6);
  auto ids = shift_identifiers(r, 10, 36);
  EXPECT_EQ(ids, (std::vector<Id>{18, 50, 9, 25, 41, 57, 4, 12}));
}

TEST(CamKoordeMath, CapacityFourHasOnlyBasicGroup) {
  RingSpace r(6);
  auto ids = shift_identifiers(r, 4, 36);
  EXPECT_EQ(ids, (std::vector<Id>{18, 50}));
}

TEST(CamKoordeMath, IdentifierCountIsCapacityMinusTwo) {
  // pred + succ + (c - 2) derived identifiers = exactly c neighbors.
  RingSpace r(19);
  for (std::uint32_t c = 4; c <= 64; ++c) {
    auto ids = shift_identifiers(r, c, 123456 % r.size());
    EXPECT_EQ(ids.size(), c - 2) << "c=" << c;
  }
}

TEST(CamKoordeMath, NeighborsSpreadAcrossTheRing) {
  // The paper's motivation for right shifts: neighbor identifiers differ
  // in the *high-order* bits and therefore spread evenly on the ring.
  // Check: for c = 2^s + 4 with s > 1, the second group hits every
  // 2^{b-s}-sized sector of the ring exactly once.
  RingSpace r(12);
  std::uint32_t c = 20;  // s = 4, t = 16
  Id x = 1234;
  auto ids = shift_identifiers(r, c, x);
  std::set<std::uint64_t> sectors;
  // ids[2..2+16): the second group.
  for (int i = 2; i < 18; ++i) sectors.insert(ids[static_cast<std::size_t>(i)] >> (12 - 4));
  EXPECT_EQ(sectors.size(), 16u);
}

TEST(CamKoordeMath, AllIdentifiersInRing) {
  RingSpace r(10);
  Rng rng(4);
  for (int t = 0; t < 2000; ++t) {
    std::uint32_t c = static_cast<std::uint32_t>(rng.uniform(4, 40));
    Id x = rng.next_below(r.size());
    for (Id ident : shift_identifiers(r, c, x)) {
      EXPECT_LT(ident, r.size());
    }
  }
}

TEST(CamKoordeMath, ResolvedNeighborsRespectCapacity) {
  RingSpace ring(12);
  NodeDirectory dir(ring);
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    dir.add(rng.next_below(ring.size()),
            {.capacity = static_cast<std::uint32_t>(rng.uniform(4, 20)),
             .bandwidth_kbps = 1});
  }
  FrozenDirectory f = dir.freeze();
  for (Id x : f.ids()) {
    std::uint32_t c = f.info(x).capacity;
    auto nbrs = resolved_neighbors(ring, f, c, x);
    EXPECT_LE(nbrs.size(), c);
    std::set<Id> uniq(nbrs.begin(), nbrs.end());
    EXPECT_EQ(uniq.size(), nbrs.size()) << "duplicates for " << x;
    EXPECT_EQ(uniq.count(x), 0u) << "self-loop for " << x;
  }
}

TEST(CamKoordeMath, ResolvedNeighborsIncludeRingLinks) {
  RingSpace ring(12);
  NodeDirectory dir(ring);
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    dir.add(rng.next_below(ring.size()), {.capacity = 4, .bandwidth_kbps = 1});
  }
  FrozenDirectory f = dir.freeze();
  for (Id x : f.ids()) {
    auto nbrs = resolved_neighbors(ring, f, 4, x);
    EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), *f.predecessor_of(x)),
              nbrs.end());
    EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), *f.successor_of(x)),
              nbrs.end());
  }
}

}  // namespace
}  // namespace cam::camkoorde
