#!/usr/bin/env bash
# Long chaos sweep: 100+ seeds through the crash-wave scenario for both
# CAM systems, repair on (every run must be invariant-clean) and repair
# off (eventual-delivery violations are EXPECTED — they are counted,
# not failed). Not part of tier-1; run before cutting a release or
# after touching the repair layer:
#
#   ./scripts/chaos_long.sh              # seeds 1..100
#   SEEDS=250 ./scripts/chaos_long.sh    # seeds 1..250
#   JOBS=8 ./scripts/chaos_long.sh       # sweep-pool workers (default
#                                        # nproc; results identical)
#   ./scripts/chaos_long.sh --sessions   # session-layer leg instead:
#                                        # detection-driven failover
#                                        # sweep (see below)
#
# Exits nonzero if any repair-on run reports a violation.
set -euo pipefail
cd "$(dirname "$0")/.."

SEEDS="${SEEDS:-100}"
JOBS="${JOBS:-$(nproc)}"
MODE=packet
[ "${1:-}" = "--sessions" ] && MODE=sessions

cmake -B build -S . >/dev/null
cmake --build build -j --target camsim >/dev/null
CAMSIM=./build/tools/camsim

# --sessions: long many-group session-chaos sweep with detection-driven
# failover (ISSUE 8). Every seed replays a zipf fleet with flash crowds,
# diurnal churn, and regional failure bursts; crashes are discovered by
# the heartbeat failure detector, orphans re-hang through standby
# parents (full placement fallback), zero-slack subtrees park, and one
# interior member of the largest streamed group dies mid-stream to
# exercise pull gap-repair. camsim exits nonzero if ANY seed violates a
# session invariant (tree/ledger consistency, exactly-once delivery,
# completeness), so both legs must be clean.
if [ "$MODE" = sessions ]; then
  fail=0
  for system in camchord camkoorde; do
    extra=""
    [ "$system" = camkoorde ] && extra="--mode=ledger"
    if "$CAMSIM" groups --chaos --detect --stream-crash \
        --strategy="$system" --n=64 --bits=12 --packets=16 \
        --seeds=1.."$SEEDS" --jobs="$JOBS" $extra > /dev/null; then
      echo "$system: $SEEDS seeds, detection-driven failover clean"
    else
      echo "FAIL $system: session invariant violation in sweep"
      echo "  repro: camsim groups --chaos --detect --stream-crash" \
           "--strategy=$system --n=64 --bits=12 --packets=16 $extra" \
           "--seeds=1..$SEEDS"
      fail=1
    fi
  done
  exit "$fail"
fi

chord_plan='at 0 drop p=0.05
at 1000 crash n=4
at 6000 clear'
# CAM-Koorde's flooding has redundant in-edges; a heavier wave is
# needed to orphan regions on most seeds (mirrors tests/chaos_repair).
koorde_plan='at 0 drop p=0.15
at 1000 crash n=6
at 6000 clear'

# One camsim invocation per (system, repair) leg: the chaos sweep mode
# runs a cell per seed on the parallel sweep pool and prints one line
# per seed; the per-seed lines and summary are byte-identical for any
# JOBS value, so raising parallelism never changes what this script sees.
fail=0
for system in camchord camkoorde; do
  plan="$chord_plan"
  [ "$system" = camkoorde ] && plan="$koorde_plan"

  # Repair on: every seed must be invariant-clean (camsim exits nonzero
  # if any is not). Capture the output so failing seeds get a repro line.
  on_report=$("$CAMSIM" chaos --strategy="$system" --n=12 --bits=10 \
      --seeds=1.."$SEEDS" --jobs="$JOBS" --plan-text="$plan" 2>/dev/null) \
    || true
  bad=$(grep -c 'VIOLATIONS' <<< "$on_report" || true)
  if [ "$bad" -gt 0 ]; then
    grep 'VIOLATIONS' <<< "$on_report" | while read -r line; do
      seed="${line#seed=}"
      seed="${seed%% *}"
      echo "FAIL $system seed=$seed (repair on): invariant violation"
      echo "  repro: camsim chaos --strategy=$system --n=12 --bits=10" \
           "--seed=$seed --plan-text='$plan'"
    done
  fi

  # Repair off: eventual-delivery violations are EXPECTED; count the
  # seeds that lost a region (their line carries the mcast.eventual
  # kind). camsim exits nonzero here by design.
  off_report=$("$CAMSIM" chaos --strategy="$system" --n=12 --bits=10 \
      --seeds=1.."$SEEDS" --jobs="$JOBS" --plan-text="$plan" --no-repair \
      2>/dev/null) || true
  flagged=$(grep -c 'mcast.eventual' <<< "$off_report" || true)

  echo "$system: $SEEDS seeds, repair-on violations=$bad," \
       "repair-off seeds with lost regions=$flagged"
  [ "$bad" -gt 0 ] && fail=1
done

exit "$fail"
