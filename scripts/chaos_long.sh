#!/usr/bin/env bash
# Long chaos sweep: 100+ seeds through the crash-wave scenario for both
# CAM systems, repair on (every run must be invariant-clean) and repair
# off (eventual-delivery violations are EXPECTED — they are counted,
# not failed). Not part of tier-1; run before cutting a release or
# after touching the repair layer:
#
#   ./scripts/chaos_long.sh              # seeds 1..100
#   SEEDS=250 ./scripts/chaos_long.sh    # seeds 1..250
#
# Exits nonzero if any repair-on run reports a violation.
set -euo pipefail
cd "$(dirname "$0")/.."

SEEDS="${SEEDS:-100}"

cmake -B build -S . >/dev/null
cmake --build build -j --target camsim >/dev/null
CAMSIM=./build/tools/camsim

chord_plan='at 0 drop p=0.05
at 1000 crash n=4
at 6000 clear'
# CAM-Koorde's flooding has redundant in-edges; a heavier wave is
# needed to orphan regions on most seeds (mirrors tests/chaos_repair).
koorde_plan='at 0 drop p=0.15
at 1000 crash n=6
at 6000 clear'

fail=0
for system in camchord camkoorde; do
  plan="$chord_plan"
  [ "$system" = camkoorde ] && plan="$koorde_plan"
  flagged=0
  bad=0
  for seed in $(seq 1 "$SEEDS"); do
    if ! "$CAMSIM" chaos --system="$system" --n=12 --bits=10 \
        --seed="$seed" --plan-text="$plan" > /dev/null 2>&1; then
      echo "FAIL $system seed=$seed (repair on): invariant violation"
      echo "  repro: camsim chaos --system=$system --n=12 --bits=10" \
           "--seed=$seed --plan-text='$plan'"
      bad=$((bad + 1))
    fi
    # camsim exits nonzero here by design (the eventual-delivery
    # invariant fires); capture the report before grepping so pipefail
    # doesn't mask the match.
    off_report=$("$CAMSIM" chaos --system="$system" --n=12 --bits=10 \
        --seed="$seed" --plan-text="$plan" --no-repair 2>/dev/null || true)
    if grep -q 'mcast.eventual' <<< "$off_report"; then
      flagged=$((flagged + 1))
    fi
  done
  echo "$system: $SEEDS seeds, repair-on violations=$bad," \
       "repair-off seeds with lost regions=$flagged"
  [ "$bad" -gt 0 ] && fail=1
done

exit "$fail"
