#!/usr/bin/env bash
# Perf harness: builds the "release" preset (optimized, NDEBUG on — the
# one build flavor where asserts are compiled out) and runs the tracked
# suite pinned to one core:
#
#   engine_sweep — the A3-churn-shaped macro probe (events/sec,
#                  ns/event, allocs/event, peak RSS)
#   micro_ops    — event-engine + flat-table microbenchmarks
#   abl_backpressure — the data-plane hotspot grid (Ablation A12);
#                  tracked rows go to BENCH_PR6.json
#   abl_manygroup — the many-group session grid (Ablation A13);
#                  tracked rows go to BENCH_PR7.json
#
# Modes:
#   scripts/bench.sh                full run; rewrites BENCH_PR5.json
#                                   (preserving its "history" section)
#                                   and BENCH_PR6.json (dataplane rows)
#   scripts/bench.sh --smoke        reduced engine_sweep run; compares
#                                   total ns/event against the committed
#                                   BENCH_PR5.json smoke baseline and
#                                   exits 1 on a >25% regression
#   scripts/bench.sh --update-smoke rerun the smoke config and refresh
#                                   only the smoke baseline in place
#
# The workloads are deterministic in --seed; wall-clock numbers move
# with the machine, which is why the smoke gate is a wide ratio (1.25x)
# against a baseline measured on the same box, not an absolute number —
# and why every engine_sweep measurement here is best-of-3 (min
# ns/event): on a shared core the fastest run is the least-perturbed
# one, and comparing best against best cancels load spikes.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=BENCH_PR5.json
BUILD=build-release
SMOKE_FLAGS="--n=4000 --bits=19 --async-n=120 --sources=4 --async-ms=20000 --seed=1"
SMOKE_MAX_RATIO=1.25

MODE=full
case "${1-}" in
  "") ;;
  --smoke) MODE=smoke ;;
  --update-smoke) MODE=update-smoke ;;
  *) echo "usage: scripts/bench.sh [--smoke|--update-smoke]" >&2; exit 2 ;;
esac

PIN=""
if command -v taskset >/dev/null 2>&1; then PIN="taskset -c 0"; fi

echo "== bench: configuring + building release preset =="
cmake --preset release >/dev/null
cmake --build "$BUILD" -j --target engine_sweep micro_ops >/dev/null

# Run engine_sweep $1 times with the remaining args; print the run with
# the lowest total ns/event (least scheduler interference).
best_of() {
  local reps=$1; shift
  local runs=()
  for _ in $(seq "$reps"); do
    # shellcheck disable=SC2086
    runs+=("$($PIN "./$BUILD/bench/engine_sweep" "$@")")
  done
  python3 -c '
import json, sys
docs = [json.loads(a) for a in sys.argv[1:]]
print(json.dumps(min(docs, key=lambda d: d["total"]["ns_per_event"])))
' "${runs[@]}"
}

run_smoke() {
  # shellcheck disable=SC2086
  best_of 3 $SMOKE_FLAGS
}

if [ "$MODE" = smoke ]; then
  if [ ! -f "$OUT" ]; then
    echo "bench: no committed $OUT baseline; run scripts/bench.sh first" >&2
    exit 1
  fi
  echo "== bench: smoke run ($SMOKE_FLAGS) =="
  CUR_JSON=$(run_smoke)
  python3 - "$OUT" <<'EOF' "$CUR_JSON" "$SMOKE_MAX_RATIO"
import json, sys
baseline_path, cur_json, max_ratio = sys.argv[1], sys.argv[2], float(sys.argv[3])
base = json.load(open(baseline_path))["smoke"]
cur = json.loads(cur_json)
# Normalize ns/event by each run's own CPU calibration: on a shared
# core, absolute wall time tracks machine load; the calibrated ratio
# tracks only the code.
b = base["total"]["ns_per_event"] / base["calib_ns_per_iter"]
c = cur["total"]["ns_per_event"] / cur["calib_ns_per_iter"]
ratio = c / b
print(f"smoke calibrated ns/event: baseline {b:.1f}, current {c:.1f}, "
      f"ratio {ratio:.3f} (limit {max_ratio})")
if ratio > max_ratio:
    print(f"bench: PERF REGRESSION — calibrated ns/event grew {ratio:.2f}x "
          f"vs committed baseline (>{max_ratio}x)", file=sys.stderr)
    sys.exit(1)
print("bench: smoke OK")
EOF
  exit 0
fi

echo "== bench: smoke-config run (baseline refresh) =="
SMOKE_JSON=$(run_smoke)

if [ "$MODE" = update-smoke ]; then
  python3 - "$OUT" <<'EOF' "$SMOKE_JSON"
import json, sys
path, smoke = sys.argv[1], json.loads(sys.argv[2])
doc = json.load(open(path))
doc["smoke"] = smoke
json.dump(doc, open(path, "w"), indent=2)
open(path, "a").write("\n")
print(f"bench: refreshed smoke baseline in {path}")
EOF
  exit 0
fi

echo "== bench: engine_sweep (full A3-churn shape, n=20000, best of 3) =="
SWEEP_JSON=$(best_of 3 --seed=1)

echo "== bench: micro_ops (event engine + flat tables) =="
MICRO_JSON=$($PIN "./$BUILD/bench/micro_ops" \
  --benchmark_filter='BM_Sim|BM_FlatMap|BM_UnorderedMap' \
  --benchmark_format=json 2>/dev/null)

python3 - "$OUT" <<'EOF' "$SWEEP_JSON" "$MICRO_JSON" "$SMOKE_JSON"
import json, sys
path = sys.argv[1]
sweep, micro, smoke = (json.loads(a) for a in sys.argv[2:5])
history = {}
try:
    history = json.load(open(path)).get("history", {})
except (FileNotFoundError, json.JSONDecodeError):
    pass
doc = {
    "schema": "cam-bench-v1",
    "generated_by": "scripts/bench.sh (release preset, NDEBUG, pinned core)",
    "engine_sweep": sweep,
    "micro_ops": {
        b["name"]: {
            "real_time_ns": round(b["real_time"], 2),
            "items_per_second": round(b.get("items_per_second", 0.0), 1),
        }
        for b in micro["benchmarks"]
    },
    "smoke": smoke,
    "history": history,
}
json.dump(doc, open(path, "w"), indent=2)
open(path, "a").write("\n")
print(f"bench: wrote {path}")
EOF

python3 - "$OUT" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1] if len(sys.argv) > 1 else "BENCH_PR5.json"))
t = doc["engine_sweep"]["total"]
print(f"total: {t['events']} events, {t['ns_per_event']:.1f} ns/event, "
      f"{t['events_per_sec']:.0f} events/sec, "
      f"{t['allocs_per_event']:.3f} allocs/event, "
      f"peak RSS {doc['engine_sweep']['peak_rss_bytes']/1e6:.1f} MB")
EOF

# ---------------------------------------------------------------------
# Data-plane phase (BENCH_PR6.json): the Ablation A12 hotspot grid.
# The rows are deterministic in --seed (event-level simulation, not
# wall clock), so unlike the engine numbers above they are directly
# comparable across machines: the tracked file records the session-rate
# win of backpressure over FIFO at a 25% hotspot uplink, and the
# uncongested rows double as a byte-identity check between the two
# forwarding modes.
DP_OUT=BENCH_PR6.json
echo "== bench: abl_backpressure (dataplane hotspot grid, n=2000) =="
cmake --build "$BUILD" -j --target abl_backpressure >/dev/null
DP_JSON=$($PIN "./$BUILD/bench/abl_backpressure" --json --jobs=4)

python3 - "$DP_OUT" <<'EOF' "$DP_JSON"
import json, sys
path, rows = sys.argv[1], json.loads(sys.argv[2])["rows"]
history = {}
try:
    history = json.load(open(path)).get("history", {})
except (FileNotFoundError, json.JSONDecodeError):
    pass
def cell(system, hotspot, mode):
    return next(r for r in rows if r["system"] == system
                and r["hotspot"] == hotspot and r["mode"] == mode)
summary = {}
for system in sorted({r["system"] for r in rows}):
    fifo = cell(system, 0.25, "fifo")
    bp = cell(system, 0.25, "backpressure")
    uf, ub = cell(system, 1.0, "fifo"), cell(system, 1.0, "backpressure")
    summary[system] = {
        "hotspot_fifo_kbps": fifo["session_kbps"],
        "hotspot_backpressure_kbps": bp["session_kbps"],
        "speedup": round(bp["session_kbps"] / fifo["session_kbps"], 3)
            if fifo["session_kbps"] > 0 else None,
        "delegated": bp["delegated"],
        "uncongested_identical":
            uf["session_kbps"] == ub["session_kbps"]
            and uf["completion_ms"] == ub["completion_ms"],
    }
doc = {
    "schema": "cam-bench-v1",
    "generated_by": "scripts/bench.sh (release preset, abl_backpressure "
                    "--json --jobs=4, n=2000 seed=7)",
    "dataplane": {"rows": rows, "summary": summary},
    "history": history,
}
json.dump(doc, open(path, "w"), indent=2)
open(path, "a").write("\n")
for system, s in summary.items():
    print(f"{system}: hotspot fifo {s['hotspot_fifo_kbps']:.1f} kbps -> "
          f"backpressure {s['hotspot_backpressure_kbps']:.1f} kbps "
          f"({s['speedup']}x, {s['delegated']} delegated), "
          f"uncongested identical: {s['uncongested_identical']}")
    if not s["uncongested_identical"]:
        print("bench: uncongested backpressure diverged from FIFO "
              f"for {system} — byte-identity broken", file=sys.stderr)
        sys.exit(1)
print(f"bench: wrote {path}")
EOF

# ---------------------------------------------------------------------
# Session phase (BENCH_PR7.json): the Ablation A13 many-group grid —
# 500 zipf-sized groups over one 2000-node overlay, admitted through
# the shared-uplink CapacityLedger and streamed concurrently through
# the multi-group data plane. Rows are deterministic in --seed; the
# bench itself exits nonzero if any node's summed uplink usage exceeds
# its capacity or any group sees a duplicate delivery, so a tracked
# file existing at all certifies the ledger invariant held.
MG_OUT=BENCH_PR7.json
echo "== bench: abl_manygroup (many-group session grid, n=2000) =="
cmake --build "$BUILD" -j --target abl_manygroup >/dev/null
MG_JSON=$($PIN "./$BUILD/bench/abl_manygroup" --json --jobs=4)

python3 - "$MG_OUT" <<'EOF' "$MG_JSON"
import json, sys
path, rows = sys.argv[1], json.loads(sys.argv[2])["rows"]
history = {}
try:
    history = json.load(open(path)).get("history", {})
except (FileNotFoundError, json.JSONDecodeError):
    pass
summary = {}
for r in rows:
    key = f"{r['system']}/{r['mode']}"
    summary[key] = {
        "groups": r["groups"],
        "streamed": r["streamed"],
        "joins_rejected": r["joins_rejected"],
        "goodput_kbps": r["goodput_kbps"],
        "jain": r["jain"],
        "p99_ms": r["p99_ms"],
    }
    if r["max_util"] > 1.0:
        print(f"bench: ledger oversubscription in {key} "
              f"(max_util={r['max_util']})", file=sys.stderr)
        sys.exit(1)
doc = {
    "schema": "cam-bench-v1",
    "generated_by": "scripts/bench.sh (release preset, abl_manygroup "
                    "--json --jobs=4, n=2000 seed=7)",
    "manygroup": {"rows": rows, "summary": summary},
    "history": history,
}
json.dump(doc, open(path, "w"), indent=2)
open(path, "a").write("\n")
for key, s in summary.items():
    print(f"{key}: {s['streamed']}/{s['groups']} groups streamed, "
          f"goodput {s['goodput_kbps']:.1f} kbps, jain {s['jain']:.4f}, "
          f"p99 {s['p99_ms']:.1f} ms, {s['joins_rejected']} joins rejected")
print(f"bench: wrote {path}")
EOF

# ---------------------------------------------------------------------
# Failover phase (BENCH_PR8.json): the Ablation A14 recovery grid —
# oracle-announced vs detection-driven failover under regional failure
# bursts, with a detected mid-stream crash driving dataplane gap
# repair. Rows are deterministic in (system, arm, seed). Two tracked
# gates, asserted here: per system, the standby arm's median
# detect->reattach latency must beat full re-placement, and its median
# stream delivery gap must be no worse — the whole point of holding
# soft standby reservations.
FO_OUT=BENCH_PR8.json
echo "== bench: abl_failover (oracle vs detected failover, A14) =="
cmake --build "$BUILD" -j --target abl_failover >/dev/null
FO_JSON=$($PIN "./$BUILD/bench/abl_failover" --json --jobs=4)

python3 - "$FO_OUT" <<'EOF' "$FO_JSON"
import json, statistics, sys
path, rows = sys.argv[1], json.loads(sys.argv[2])["rows"]
history = {}
try:
    history = json.load(open(path)).get("history", {})
except (FileNotFoundError, json.JSONDecodeError):
    pass
def med(system, arm, key, eligible=lambda r: True):
    vals = [r[key] for r in rows
            if r["system"] == system and r["arm"] == arm and eligible(r)]
    return statistics.median(vals) if vals else 0.0
# Latency medians only mean something over cells that actually fed the
# reattach histogram — a burst that only hits leaves or sources
# re-attaches nothing and would drag the median to zero.
def rehung(r):
    return r["reattach_samples"] > 0
summary = {}
ok = True
for system in sorted({r["system"] for r in rows}):
    s = {
        arm: {
            "detect_p50_ms": med(system, arm, "detect_p50_ms"),
            "reattach_p50_ms": med(system, arm, "reattach_p50_ms",
                                   rehung),
            "stream_gap_p50": med(system, arm, "stream_gap_total"),
            "dropped": sum(r["dropped"] for r in rows
                           if r["system"] == system and r["arm"] == arm),
        }
        for arm in ("oracle", "detect-full", "detect-standby")
    }
    gate_latency = (s["detect-standby"]["reattach_p50_ms"]
                    < s["detect-full"]["reattach_p50_ms"])
    gate_gaps = (s["detect-standby"]["stream_gap_p50"]
                 <= s["detect-full"]["stream_gap_p50"])
    s["gates"] = {"standby_reattach_faster": gate_latency,
                  "standby_gaps_no_worse": gate_gaps}
    summary[system] = s
    print(f"{system}: reattach p50 standby "
          f"{s['detect-standby']['reattach_p50_ms']:.3f} ms vs full "
          f"{s['detect-full']['reattach_p50_ms']:.3f} ms, stream gap p50 "
          f"{s['detect-standby']['stream_gap_p50']:.1f} vs "
          f"{s['detect-full']['stream_gap_p50']:.1f}")
    if not (gate_latency and gate_gaps):
        print(f"bench: FAILOVER GATE FAILED for {system} — standby must "
              f"beat full re-placement", file=sys.stderr)
        ok = False
doc = {
    "schema": "cam-bench-v1",
    "generated_by": "scripts/bench.sh (release preset, abl_failover "
                    "--json --jobs=4, n=128 seeds=8)",
    "failover": {"rows": rows, "summary": summary},
    "history": history,
}
json.dump(doc, open(path, "w"), indent=2)
open(path, "a").write("\n")
if not ok:
    sys.exit(1)
print(f"bench: wrote {path}")
EOF

# ---------------------------------------------------------------------
# Strategy phase (BENCH_PR9.json): the Ablation A15 head-to-head grid —
# all six registered strategies (CAMs, DHT baselines, and the
# geo-coords / bounded-degree rivals) over bandwidth-derived and uniform
# populations. Rows are deterministic in --seed. Two gates, enforced by
# the bench's own exit status and re-checked here: the CAMs must beat
# both rivals on provisioned throughput on the bandwidth-derived
# population (the paper's capacity-aware provisioning claim), and the
# seam's output must be bit-identical to the deprecated exp::System
# enum path for the four legacy systems.
SR_OUT=BENCH_PR9.json
echo "== bench: abl_strategy_rivals (strategy seam head-to-head, A15) =="
cmake --build "$BUILD" -j --target abl_strategy_rivals >/dev/null
SR_JSON=$($PIN "./$BUILD/bench/abl_strategy_rivals" --json --jobs=4)

python3 - "$SR_OUT" <<'EOF' "$SR_JSON"
import json, sys
path, doc_in = sys.argv[1], json.loads(sys.argv[2])
rows, gates = doc_in["rows"], doc_in["gates"]
history = {}
try:
    history = json.load(open(path)).get("history", {})
except (FileNotFoundError, json.JSONDecodeError):
    pass
summary = {}
for scen in sorted({r["scenario"] for r in rows}):
    sr = [r for r in rows if r["scenario"] == scen]
    cams = [r for r in sr if r["key"] in ("camchord", "camkoorde")]
    rivals = [r for r in sr if r["key"] in ("geo-coords", "bounded-degree")]
    summary[scen] = {
        "cam_worst_provisioned_kbps":
            min(r["provisioned_kbps"] for r in cams),
        "rival_best_provisioned_kbps":
            max(r["provisioned_kbps"] for r in rivals),
        "capacity_violations":
            {r["strategy"]: r["cap_violations"] for r in sr},
        "chaos_delivery":
            {r["strategy"]: r["chaos_delivery"] for r in sr},
    }
doc = {
    "schema": "cam-bench-v1",
    "generated_by": "scripts/bench.sh (release preset, abl_strategy_rivals "
                    "--json --jobs=4, n=2000 seed=7)",
    "strategy_rivals": {"rows": rows, "summary": summary, "gates": gates},
    "history": history,
}
json.dump(doc, open(path, "w"), indent=2)
open(path, "a").write("\n")
for scen, s in summary.items():
    print(f"{scen}: CAM worst provisioned "
          f"{s['cam_worst_provisioned_kbps']:.1f} kbps vs rival best "
          f"{s['rival_best_provisioned_kbps']:.1f} kbps")
if not all(gates.values()):
    print(f"bench: STRATEGY GATE FAILED: {gates}", file=sys.stderr)
    sys.exit(1)
print(f"bench: wrote {path}")
EOF

# ---------------------------------------------------------------------
# Engine-scale phase (BENCH_PR10.json): the sharded event engine over
# n in {20k, 200k, 1M} x shards in {1, 4, hw}. Three gates, asserted
# here:
#   * equivalence_ok — delivered-tree signatures identical across every
#     shard count at every n (the determinism contract);
#   * allocs/event < 0.1 in every cell (the arena/pool discipline);
#   * events/sec: with >1 hardware core the best sharded cell must beat
#     the one-shard cell at the largest n; on a single core (where
#     shards can only time-slice) the sharded cells must instead stay
#     within 1.5x of the serial wall time — the honest gate for this
#     box, recorded as such in the JSON.
# The 1M row completing at all, with peak RSS captured, is the
# million-node-in-RAM acceptance probe.
ES_OUT=BENCH_PR10.json
echo "== bench: engine_scale (sharded engine, n up to 1M) =="
cmake --build "$BUILD" -j --target engine_scale >/dev/null
ES_JSON=$($PIN "./$BUILD/bench/engine_scale" --sources=2 --seed=1)

python3 - "$ES_OUT" <<'EOF' "$ES_JSON"
import json, sys
path, doc_in = sys.argv[1], json.loads(sys.argv[2])
cells, hw = doc_in["cells"], doc_in["config"]["hw_cores"]
history = {}
try:
    history = json.load(open(path)).get("history", {})
except (FileNotFoundError, json.JSONDecodeError):
    pass
ok = True
if not doc_in["equivalence_ok"]:
    print("bench: ENGINE GATE FAILED — delivered trees diverged across "
          "shard counts", file=sys.stderr)
    ok = False
for c in cells:
    if c["allocs_per_event"] >= 0.1:
        print(f"bench: ENGINE GATE FAILED — {c['allocs_per_event']:.3f} "
              f"allocs/event at n={c['n']} shards={c['shards']} (limit 0.1)",
              file=sys.stderr)
        ok = False
summary = {}
for n in sorted({c["n"] for c in cells}):
    row = {c["shards"]: c for c in cells if c["n"] == n}
    serial = row[1]
    sharded = [c for s, c in row.items() if s > 1]
    best = max(sharded, key=lambda c: c["events_per_sec"]) if sharded else serial
    speedup = best["events_per_sec"] / serial["events_per_sec"]
    summary[str(n)] = {
        "serial_events_per_sec": serial["events_per_sec"],
        "best_sharded_events_per_sec": best["events_per_sec"],
        "best_sharded_shards": best["shards"],
        "speedup": round(speedup, 3),
        "peak_rss_bytes": max(c["peak_rss_bytes"] for c in row.values()),
    }
    if hw > 1 and n == max(c["n"] for c in cells) and speedup < 1.0:
        print(f"bench: ENGINE GATE FAILED — sharded slower than serial at "
              f"n={n} on a {hw}-core box", file=sys.stderr)
        ok = False
    if hw == 1 and speedup < 1.0 / 1.5:
        print(f"bench: ENGINE GATE FAILED — sharded overhead over 1.5x at "
              f"n={n} on a single core", file=sys.stderr)
        ok = False
doc = {
    "schema": "cam-bench-v1",
    "generated_by": "scripts/bench.sh (release preset, engine_scale "
                    "--sources=2 --seed=1, pinned core)",
    "engine_scale": doc_in,
    "summary": summary,
    "gates": {"equivalence_ok": doc_in["equivalence_ok"],
              "allocs_under_0.1": all(c["allocs_per_event"] < 0.1
                                      for c in cells),
              "perf_mode": "speedup" if hw > 1 else "bounded-overhead-1core",
              "perf_ok": ok},
    "history": history,
}
json.dump(doc, open(path, "w"), indent=2)
open(path, "a").write("\n")
for n, s in summary.items():
    print(f"n={n}: serial {s['serial_events_per_sec']:.0f} ev/s, best "
          f"sharded {s['best_sharded_events_per_sec']:.0f} ev/s "
          f"(shards={s['best_sharded_shards']}, {s['speedup']}x), "
          f"peak RSS {s['peak_rss_bytes']/1e6:.1f} MB")
if not ok:
    sys.exit(1)
print(f"bench: wrote {path}")
EOF
