#!/usr/bin/env bash
# Tier-1 verification: the full suite in the normal build, then the
# telemetry + protocol tests again under ASan+UBSan (-DCAM_SANITIZE=ON).
# Run from the repository root:  ./scripts/tier1.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: RelWithDebInfo build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo
echo "== tier-1: ASan+UBSan build, telemetry + protocol + dataplane + session tests =="
cmake -B build-asan -S . -DCAM_SANITIZE=ON >/dev/null
cmake --build build-asan -j --target cam_tests dataplane_alloc_probe
ctest --test-dir build-asan --output-on-failure -j "$(nproc)" \
  -R 'Telemetry|Async|HostBus|Proto|Fault|Chaos|EngineGolden|Dataplane|PacketPool|BinQueue|Session|Zipf|FlashWave|WorkloadPlan|GenerateEvents|CapacityLedger|GroupTree|Piggyback|Strategy|Shard'

echo
echo "== tier-1: ASan+UBSan 2-shard serial-equivalence smoke =="
# The sharded engine's determinism contract under ASan: the ShardedAsync
# suite above already replays serial == 1-shard == 2-shard == 4-shard on
# the full async stack; this re-runs the chord equivalence case alone so
# a contract break fails fast with its own banner.
ctest --test-dir build-asan --output-on-failure \
  -R 'ShardedAsync.CamChordSerialEquivalenceAcrossShardCounts'

echo
echo "== tier-1: ASan+UBSan chaos smoke (camsim chaos) =="
cmake --build build-asan -j --target camsim
./build-asan/tools/camsim chaos --strategy=camchord --n=12 --bits=10 --seed=7 \
  > /dev/null
./build-asan/tools/camsim chaos --strategy=camkoorde --n=12 --bits=10 --seed=7 \
  > /dev/null

echo
echo "== tier-1: ASan+UBSan strategy seam smoke (head-to-head multicast) =="
# The full registry through the camsim seam: one comma-list grid over
# every registered strategy, plus oracle chaos for the two rivals.
./build-asan/tools/camsim multicast \
  --strategy=camchord,camkoorde,chord,koorde,geo-coords,bounded-degree \
  --n=200 --bits=12 --seeds=1..2 > /dev/null
./build-asan/tools/camsim chaos --strategy=geo-coords,bounded-degree \
  --n=100 --bits=12 --seed=5 > /dev/null

echo
echo "== tier-1: ASan+UBSan repair-enabled crash-wave smoke =="
# Crash a third of the overlay while a multicast is in flight; the
# repair layer (on by default) must bring eventual delivery to 100% of
# survivors or camsim exits nonzero on the mcast.eventual invariant.
CRASH_WAVE_PLAN='at 0 drop p=0.05
at 1000 crash n=4
at 6000 clear'
./build-asan/tools/camsim chaos --strategy=camchord --n=12 --bits=10 --seed=6 \
  --plan-text="$CRASH_WAVE_PLAN" > /dev/null
./build-asan/tools/camsim chaos --strategy=camkoorde --n=12 --bits=10 --seed=6 \
  --plan-text="$CRASH_WAVE_PLAN" > /dev/null

echo
echo "== tier-1: ASan+UBSan detection-driven failover smoke =="
# Detection-mode session chaos: crashes discovered by the heartbeat
# failure detector, standby re-hangs, parked subtrees, and a detected
# mid-stream crash with pull gap-repair — the whole failover pipeline
# under ASan. camsim exits nonzero on any session invariant violation.
./build-asan/tools/camsim groups --chaos --detect --stream-crash \
  --strategy=camchord --n=48 --bits=12 --seed=4 --packets=16 > /dev/null
./build-asan/tools/camsim groups --chaos --detect --stream-crash \
  --strategy=camkoorde --n=48 --bits=12 --seed=8 --mode=ledger \
  --packets=16 > /dev/null

echo
echo "== tier-1: perf smoke (release preset, calibrated ns/event gate) =="
# Best-of-3 engine_sweep at reduced scale against the committed
# BENCH_PR5.json baseline; fails on a >25% load-normalized ns/event
# regression. See scripts/bench.sh for the calibration scheme.
./scripts/bench.sh --smoke

echo
echo "== tier-1: TSan parallel sweep smoke (4-job chaos sweep) =="
# The parallel sweep runtime under ThreadSanitizer: four chaos cells on
# four workers. Any mutable state shared between cells (a leaked static,
# a shared Registry) shows up here as a data race, not a flaky sweep.
cmake -B build-tsan -S . -DCAM_SANITIZE=thread >/dev/null
cmake --build build-tsan -j --target camsim
./build-tsan/tools/camsim chaos --strategy=camchord --n=12 --bits=10 \
  --seeds=1..4 --jobs=4 --plan-text="$CRASH_WAVE_PLAN" > /dev/null
# Registry reads from four workers at once: a head-to-head strategy grid
# (6 strategies x 2 seeds) on the sweep pool — any mutable state behind
# strategy::registry() is a TSan race here.
./build-tsan/tools/camsim multicast \
  --strategy=camchord,camkoorde,chord,koorde,geo-coords,bounded-degree \
  --n=150 --bits=12 --seeds=1..2 --jobs=4 > /dev/null

echo
echo "== tier-1: TSan engine goldens + dataplane/session sweeps (byte-identity) =="
cmake --build build-tsan -j --target cam_tests
ctest --test-dir build-tsan --output-on-failure -j "$(nproc)" \
  -R 'EngineGolden|DataplaneSweep|SessionSweep|DetectionModeSweep|StrategyGolden'

echo
echo "== tier-1: TSan sharded engine (cross-shard message passing) =="
# Worker lanes + barrier hand-offs under ThreadSanitizer: the ShardGroup
# window loop, the sharded oracle casts, and the sharded async stack all
# push events across shard boundaries here. An outbox touched outside
# the barrier, or any cross-lane state not separated by the generation
# protocol, is a TSan race on this grid.
ctest --test-dir build-tsan --output-on-failure \
  -R 'ShardTeam|ShardGroup|ShardedCast|ShardedAsync'

echo
echo "tier-1 OK"
