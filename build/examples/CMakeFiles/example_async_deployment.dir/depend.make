# Empty dependencies file for example_async_deployment.
# This may be replaced when dependencies are built.
