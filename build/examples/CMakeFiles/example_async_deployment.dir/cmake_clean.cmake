file(REMOVE_RECURSE
  "CMakeFiles/example_async_deployment.dir/async_deployment.cpp.o"
  "CMakeFiles/example_async_deployment.dir/async_deployment.cpp.o.d"
  "example_async_deployment"
  "example_async_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_async_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
