# Empty dependencies file for example_video_stream.
# This may be replaced when dependencies are built.
