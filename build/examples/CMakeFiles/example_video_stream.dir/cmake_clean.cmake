file(REMOVE_RECURSE
  "CMakeFiles/example_video_stream.dir/video_stream.cpp.o"
  "CMakeFiles/example_video_stream.dir/video_stream.cpp.o.d"
  "example_video_stream"
  "example_video_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_video_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
