# Empty compiler generated dependencies file for example_membership_churn.
# This may be replaced when dependencies are built.
