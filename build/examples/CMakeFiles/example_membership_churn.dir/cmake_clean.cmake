file(REMOVE_RECURSE
  "CMakeFiles/example_membership_churn.dir/membership_churn.cpp.o"
  "CMakeFiles/example_membership_churn.dir/membership_churn.cpp.o.d"
  "example_membership_churn"
  "example_membership_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_membership_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
