file(REMOVE_RECURSE
  "CMakeFiles/example_game_lobby.dir/game_lobby.cpp.o"
  "CMakeFiles/example_game_lobby.dir/game_lobby.cpp.o.d"
  "example_game_lobby"
  "example_game_lobby.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_game_lobby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
