# Empty dependencies file for example_game_lobby.
# This may be replaced when dependencies are built.
