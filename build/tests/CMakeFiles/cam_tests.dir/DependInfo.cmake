
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/async_camchord_test.cpp" "tests/CMakeFiles/cam_tests.dir/async_camchord_test.cpp.o" "gcc" "tests/CMakeFiles/cam_tests.dir/async_camchord_test.cpp.o.d"
  "/root/repo/tests/async_camkoorde_test.cpp" "tests/CMakeFiles/cam_tests.dir/async_camkoorde_test.cpp.o" "gcc" "tests/CMakeFiles/cam_tests.dir/async_camkoorde_test.cpp.o.d"
  "/root/repo/tests/async_reliability_test.cpp" "tests/CMakeFiles/cam_tests.dir/async_reliability_test.cpp.o" "gcc" "tests/CMakeFiles/cam_tests.dir/async_reliability_test.cpp.o.d"
  "/root/repo/tests/camchord_math_test.cpp" "tests/CMakeFiles/cam_tests.dir/camchord_math_test.cpp.o" "gcc" "tests/CMakeFiles/cam_tests.dir/camchord_math_test.cpp.o.d"
  "/root/repo/tests/camchord_net_test.cpp" "tests/CMakeFiles/cam_tests.dir/camchord_net_test.cpp.o" "gcc" "tests/CMakeFiles/cam_tests.dir/camchord_net_test.cpp.o.d"
  "/root/repo/tests/camchord_oracle_test.cpp" "tests/CMakeFiles/cam_tests.dir/camchord_oracle_test.cpp.o" "gcc" "tests/CMakeFiles/cam_tests.dir/camchord_oracle_test.cpp.o.d"
  "/root/repo/tests/camchord_pns_test.cpp" "tests/CMakeFiles/cam_tests.dir/camchord_pns_test.cpp.o" "gcc" "tests/CMakeFiles/cam_tests.dir/camchord_pns_test.cpp.o.d"
  "/root/repo/tests/camkoorde_derivation_test.cpp" "tests/CMakeFiles/cam_tests.dir/camkoorde_derivation_test.cpp.o" "gcc" "tests/CMakeFiles/cam_tests.dir/camkoorde_derivation_test.cpp.o.d"
  "/root/repo/tests/camkoorde_math_test.cpp" "tests/CMakeFiles/cam_tests.dir/camkoorde_math_test.cpp.o" "gcc" "tests/CMakeFiles/cam_tests.dir/camkoorde_math_test.cpp.o.d"
  "/root/repo/tests/camkoorde_net_test.cpp" "tests/CMakeFiles/cam_tests.dir/camkoorde_net_test.cpp.o" "gcc" "tests/CMakeFiles/cam_tests.dir/camkoorde_net_test.cpp.o.d"
  "/root/repo/tests/camkoorde_oracle_test.cpp" "tests/CMakeFiles/cam_tests.dir/camkoorde_oracle_test.cpp.o" "gcc" "tests/CMakeFiles/cam_tests.dir/camkoorde_oracle_test.cpp.o.d"
  "/root/repo/tests/chord_test.cpp" "tests/CMakeFiles/cam_tests.dir/chord_test.cpp.o" "gcc" "tests/CMakeFiles/cam_tests.dir/chord_test.cpp.o.d"
  "/root/repo/tests/directory_test.cpp" "tests/CMakeFiles/cam_tests.dir/directory_test.cpp.o" "gcc" "tests/CMakeFiles/cam_tests.dir/directory_test.cpp.o.d"
  "/root/repo/tests/exhaustive_small_ring_test.cpp" "tests/CMakeFiles/cam_tests.dir/exhaustive_small_ring_test.cpp.o" "gcc" "tests/CMakeFiles/cam_tests.dir/exhaustive_small_ring_test.cpp.o.d"
  "/root/repo/tests/experiments_test.cpp" "tests/CMakeFiles/cam_tests.dir/experiments_test.cpp.o" "gcc" "tests/CMakeFiles/cam_tests.dir/experiments_test.cpp.o.d"
  "/root/repo/tests/geography_test.cpp" "tests/CMakeFiles/cam_tests.dir/geography_test.cpp.o" "gcc" "tests/CMakeFiles/cam_tests.dir/geography_test.cpp.o.d"
  "/root/repo/tests/koorde_test.cpp" "tests/CMakeFiles/cam_tests.dir/koorde_test.cpp.o" "gcc" "tests/CMakeFiles/cam_tests.dir/koorde_test.cpp.o.d"
  "/root/repo/tests/multicast_test.cpp" "tests/CMakeFiles/cam_tests.dir/multicast_test.cpp.o" "gcc" "tests/CMakeFiles/cam_tests.dir/multicast_test.cpp.o.d"
  "/root/repo/tests/ring_net_edge_test.cpp" "tests/CMakeFiles/cam_tests.dir/ring_net_edge_test.cpp.o" "gcc" "tests/CMakeFiles/cam_tests.dir/ring_net_edge_test.cpp.o.d"
  "/root/repo/tests/ring_net_fuzz_test.cpp" "tests/CMakeFiles/cam_tests.dir/ring_net_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/cam_tests.dir/ring_net_fuzz_test.cpp.o.d"
  "/root/repo/tests/ring_partition_test.cpp" "tests/CMakeFiles/cam_tests.dir/ring_partition_test.cpp.o" "gcc" "tests/CMakeFiles/cam_tests.dir/ring_partition_test.cpp.o.d"
  "/root/repo/tests/ring_test.cpp" "tests/CMakeFiles/cam_tests.dir/ring_test.cpp.o" "gcc" "tests/CMakeFiles/cam_tests.dir/ring_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/cam_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/cam_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/streaming_test.cpp" "tests/CMakeFiles/cam_tests.dir/streaming_test.cpp.o" "gcc" "tests/CMakeFiles/cam_tests.dir/streaming_test.cpp.o.d"
  "/root/repo/tests/util_intmath_test.cpp" "tests/CMakeFiles/cam_tests.dir/util_intmath_test.cpp.o" "gcc" "tests/CMakeFiles/cam_tests.dir/util_intmath_test.cpp.o.d"
  "/root/repo/tests/util_rng_test.cpp" "tests/CMakeFiles/cam_tests.dir/util_rng_test.cpp.o" "gcc" "tests/CMakeFiles/cam_tests.dir/util_rng_test.cpp.o.d"
  "/root/repo/tests/util_sha1_test.cpp" "tests/CMakeFiles/cam_tests.dir/util_sha1_test.cpp.o" "gcc" "tests/CMakeFiles/cam_tests.dir/util_sha1_test.cpp.o.d"
  "/root/repo/tests/workload_test.cpp" "tests/CMakeFiles/cam_tests.dir/workload_test.cpp.o" "gcc" "tests/CMakeFiles/cam_tests.dir/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cam_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ids/CMakeFiles/cam_ids.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cam_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/cam_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/multicast/CMakeFiles/cam_multicast.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/cam_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/cam_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cam_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/camchord/CMakeFiles/cam_camchord.dir/DependInfo.cmake"
  "/root/repo/build/src/camkoorde/CMakeFiles/cam_camkoorde.dir/DependInfo.cmake"
  "/root/repo/build/src/chord/CMakeFiles/cam_chord_base.dir/DependInfo.cmake"
  "/root/repo/build/src/koorde/CMakeFiles/cam_koorde_base.dir/DependInfo.cmake"
  "/root/repo/build/src/experiments/CMakeFiles/cam_experiments.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
