# Empty dependencies file for cam_tests.
# This may be replaced when dependencies are built.
