file(REMOVE_RECURSE
  "CMakeFiles/cam_overlay.dir/directory.cpp.o"
  "CMakeFiles/cam_overlay.dir/directory.cpp.o.d"
  "CMakeFiles/cam_overlay.dir/ring_net.cpp.o"
  "CMakeFiles/cam_overlay.dir/ring_net.cpp.o.d"
  "libcam_overlay.a"
  "libcam_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cam_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
