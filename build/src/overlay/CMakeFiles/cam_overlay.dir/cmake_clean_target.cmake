file(REMOVE_RECURSE
  "libcam_overlay.a"
)
