# Empty dependencies file for cam_overlay.
# This may be replaced when dependencies are built.
