# Empty dependencies file for cam_chord_base.
# This may be replaced when dependencies are built.
