file(REMOVE_RECURSE
  "CMakeFiles/cam_chord_base.dir/el_ansary.cpp.o"
  "CMakeFiles/cam_chord_base.dir/el_ansary.cpp.o.d"
  "libcam_chord_base.a"
  "libcam_chord_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cam_chord_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
