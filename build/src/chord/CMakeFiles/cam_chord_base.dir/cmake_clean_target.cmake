file(REMOVE_RECURSE
  "libcam_chord_base.a"
)
