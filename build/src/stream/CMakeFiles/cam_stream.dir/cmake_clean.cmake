file(REMOVE_RECURSE
  "CMakeFiles/cam_stream.dir/streaming.cpp.o"
  "CMakeFiles/cam_stream.dir/streaming.cpp.o.d"
  "libcam_stream.a"
  "libcam_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cam_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
