# Empty compiler generated dependencies file for cam_stream.
# This may be replaced when dependencies are built.
