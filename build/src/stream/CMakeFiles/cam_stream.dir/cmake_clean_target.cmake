file(REMOVE_RECURSE
  "libcam_stream.a"
)
