file(REMOVE_RECURSE
  "CMakeFiles/cam_util.dir/intmath.cpp.o"
  "CMakeFiles/cam_util.dir/intmath.cpp.o.d"
  "CMakeFiles/cam_util.dir/rng.cpp.o"
  "CMakeFiles/cam_util.dir/rng.cpp.o.d"
  "CMakeFiles/cam_util.dir/sha1.cpp.o"
  "CMakeFiles/cam_util.dir/sha1.cpp.o.d"
  "libcam_util.a"
  "libcam_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cam_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
