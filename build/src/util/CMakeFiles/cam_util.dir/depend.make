# Empty dependencies file for cam_util.
# This may be replaced when dependencies are built.
