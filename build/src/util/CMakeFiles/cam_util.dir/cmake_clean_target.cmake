file(REMOVE_RECURSE
  "libcam_util.a"
)
