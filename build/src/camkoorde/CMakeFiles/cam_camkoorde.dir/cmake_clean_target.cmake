file(REMOVE_RECURSE
  "libcam_camkoorde.a"
)
