# Empty dependencies file for cam_camkoorde.
# This may be replaced when dependencies are built.
