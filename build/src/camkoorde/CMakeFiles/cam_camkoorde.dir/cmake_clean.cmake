file(REMOVE_RECURSE
  "CMakeFiles/cam_camkoorde.dir/neighbor_math.cpp.o"
  "CMakeFiles/cam_camkoorde.dir/neighbor_math.cpp.o.d"
  "CMakeFiles/cam_camkoorde.dir/net.cpp.o"
  "CMakeFiles/cam_camkoorde.dir/net.cpp.o.d"
  "CMakeFiles/cam_camkoorde.dir/oracle.cpp.o"
  "CMakeFiles/cam_camkoorde.dir/oracle.cpp.o.d"
  "libcam_camkoorde.a"
  "libcam_camkoorde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cam_camkoorde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
