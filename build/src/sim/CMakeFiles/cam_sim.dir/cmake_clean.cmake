file(REMOVE_RECURSE
  "CMakeFiles/cam_sim.dir/latency.cpp.o"
  "CMakeFiles/cam_sim.dir/latency.cpp.o.d"
  "CMakeFiles/cam_sim.dir/network.cpp.o"
  "CMakeFiles/cam_sim.dir/network.cpp.o.d"
  "CMakeFiles/cam_sim.dir/simulator.cpp.o"
  "CMakeFiles/cam_sim.dir/simulator.cpp.o.d"
  "libcam_sim.a"
  "libcam_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cam_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
