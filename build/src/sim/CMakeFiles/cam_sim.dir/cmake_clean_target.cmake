file(REMOVE_RECURSE
  "libcam_sim.a"
)
