# Empty compiler generated dependencies file for cam_sim.
# This may be replaced when dependencies are built.
