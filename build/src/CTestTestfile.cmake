# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("ids")
subdirs("sim")
subdirs("overlay")
subdirs("chord")
subdirs("koorde")
subdirs("camchord")
subdirs("camkoorde")
subdirs("multicast")
subdirs("stream")
subdirs("proto")
subdirs("workload")
subdirs("experiments")
