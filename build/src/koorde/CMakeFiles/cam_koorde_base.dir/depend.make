# Empty dependencies file for cam_koorde_base.
# This may be replaced when dependencies are built.
