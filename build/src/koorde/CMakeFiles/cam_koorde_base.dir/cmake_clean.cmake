file(REMOVE_RECURSE
  "CMakeFiles/cam_koorde_base.dir/koorde.cpp.o"
  "CMakeFiles/cam_koorde_base.dir/koorde.cpp.o.d"
  "libcam_koorde_base.a"
  "libcam_koorde_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cam_koorde_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
