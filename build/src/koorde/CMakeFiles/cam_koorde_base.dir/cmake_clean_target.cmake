file(REMOVE_RECURSE
  "libcam_koorde_base.a"
)
