# Empty compiler generated dependencies file for cam_multicast.
# This may be replaced when dependencies are built.
