file(REMOVE_RECURSE
  "CMakeFiles/cam_multicast.dir/flood.cpp.o"
  "CMakeFiles/cam_multicast.dir/flood.cpp.o.d"
  "CMakeFiles/cam_multicast.dir/metrics.cpp.o"
  "CMakeFiles/cam_multicast.dir/metrics.cpp.o.d"
  "CMakeFiles/cam_multicast.dir/tree.cpp.o"
  "CMakeFiles/cam_multicast.dir/tree.cpp.o.d"
  "libcam_multicast.a"
  "libcam_multicast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cam_multicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
