file(REMOVE_RECURSE
  "libcam_multicast.a"
)
