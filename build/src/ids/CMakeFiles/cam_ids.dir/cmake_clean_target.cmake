file(REMOVE_RECURSE
  "libcam_ids.a"
)
