file(REMOVE_RECURSE
  "CMakeFiles/cam_ids.dir/ring.cpp.o"
  "CMakeFiles/cam_ids.dir/ring.cpp.o.d"
  "libcam_ids.a"
  "libcam_ids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cam_ids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
