# Empty dependencies file for cam_ids.
# This may be replaced when dependencies are built.
