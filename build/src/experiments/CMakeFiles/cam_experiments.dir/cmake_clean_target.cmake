file(REMOVE_RECURSE
  "libcam_experiments.a"
)
