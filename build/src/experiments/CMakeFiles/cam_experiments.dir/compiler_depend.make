# Empty compiler generated dependencies file for cam_experiments.
# This may be replaced when dependencies are built.
