file(REMOVE_RECURSE
  "CMakeFiles/cam_experiments.dir/figures.cpp.o"
  "CMakeFiles/cam_experiments.dir/figures.cpp.o.d"
  "CMakeFiles/cam_experiments.dir/runner.cpp.o"
  "CMakeFiles/cam_experiments.dir/runner.cpp.o.d"
  "CMakeFiles/cam_experiments.dir/systems.cpp.o"
  "CMakeFiles/cam_experiments.dir/systems.cpp.o.d"
  "CMakeFiles/cam_experiments.dir/table.cpp.o"
  "CMakeFiles/cam_experiments.dir/table.cpp.o.d"
  "libcam_experiments.a"
  "libcam_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cam_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
