file(REMOVE_RECURSE
  "libcam_camchord.a"
)
