file(REMOVE_RECURSE
  "CMakeFiles/cam_camchord.dir/neighbor_math.cpp.o"
  "CMakeFiles/cam_camchord.dir/neighbor_math.cpp.o.d"
  "CMakeFiles/cam_camchord.dir/net.cpp.o"
  "CMakeFiles/cam_camchord.dir/net.cpp.o.d"
  "CMakeFiles/cam_camchord.dir/oracle.cpp.o"
  "CMakeFiles/cam_camchord.dir/oracle.cpp.o.d"
  "CMakeFiles/cam_camchord.dir/pns.cpp.o"
  "CMakeFiles/cam_camchord.dir/pns.cpp.o.d"
  "libcam_camchord.a"
  "libcam_camchord.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cam_camchord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
