# Empty dependencies file for cam_camchord.
# This may be replaced when dependencies are built.
