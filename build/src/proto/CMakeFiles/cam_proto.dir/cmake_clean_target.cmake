file(REMOVE_RECURSE
  "libcam_proto.a"
)
