file(REMOVE_RECURSE
  "CMakeFiles/cam_proto.dir/async_camchord.cpp.o"
  "CMakeFiles/cam_proto.dir/async_camchord.cpp.o.d"
  "CMakeFiles/cam_proto.dir/async_camkoorde.cpp.o"
  "CMakeFiles/cam_proto.dir/async_camkoorde.cpp.o.d"
  "CMakeFiles/cam_proto.dir/async_node.cpp.o"
  "CMakeFiles/cam_proto.dir/async_node.cpp.o.d"
  "CMakeFiles/cam_proto.dir/host_bus.cpp.o"
  "CMakeFiles/cam_proto.dir/host_bus.cpp.o.d"
  "libcam_proto.a"
  "libcam_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cam_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
