# Empty compiler generated dependencies file for cam_proto.
# This may be replaced when dependencies are built.
