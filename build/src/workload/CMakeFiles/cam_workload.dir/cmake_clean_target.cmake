file(REMOVE_RECURSE
  "libcam_workload.a"
)
