file(REMOVE_RECURSE
  "CMakeFiles/cam_workload.dir/churn.cpp.o"
  "CMakeFiles/cam_workload.dir/churn.cpp.o.d"
  "CMakeFiles/cam_workload.dir/geography.cpp.o"
  "CMakeFiles/cam_workload.dir/geography.cpp.o.d"
  "CMakeFiles/cam_workload.dir/population.cpp.o"
  "CMakeFiles/cam_workload.dir/population.cpp.o.d"
  "libcam_workload.a"
  "libcam_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cam_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
