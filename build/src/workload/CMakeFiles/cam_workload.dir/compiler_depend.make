# Empty compiler generated dependencies file for cam_workload.
# This may be replaced when dependencies are built.
