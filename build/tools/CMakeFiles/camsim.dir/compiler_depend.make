# Empty compiler generated dependencies file for camsim.
# This may be replaced when dependencies are built.
