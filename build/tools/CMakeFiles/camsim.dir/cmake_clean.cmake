file(REMOVE_RECURSE
  "CMakeFiles/camsim.dir/camsim.cpp.o"
  "CMakeFiles/camsim.dir/camsim.cpp.o.d"
  "camsim"
  "camsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
