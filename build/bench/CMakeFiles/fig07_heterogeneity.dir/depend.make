# Empty dependencies file for fig07_heterogeneity.
# This may be replaced when dependencies are built.
