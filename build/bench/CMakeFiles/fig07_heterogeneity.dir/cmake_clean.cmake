file(REMOVE_RECURSE
  "CMakeFiles/fig07_heterogeneity.dir/fig07_heterogeneity.cpp.o"
  "CMakeFiles/fig07_heterogeneity.dir/fig07_heterogeneity.cpp.o.d"
  "fig07_heterogeneity"
  "fig07_heterogeneity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_heterogeneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
