
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/abl_geography.cpp" "bench/CMakeFiles/abl_geography.dir/abl_geography.cpp.o" "gcc" "bench/CMakeFiles/abl_geography.dir/abl_geography.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cam_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ids/CMakeFiles/cam_ids.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cam_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/cam_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/multicast/CMakeFiles/cam_multicast.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/cam_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/cam_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cam_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/camchord/CMakeFiles/cam_camchord.dir/DependInfo.cmake"
  "/root/repo/build/src/camkoorde/CMakeFiles/cam_camkoorde.dir/DependInfo.cmake"
  "/root/repo/build/src/chord/CMakeFiles/cam_chord_base.dir/DependInfo.cmake"
  "/root/repo/build/src/koorde/CMakeFiles/cam_koorde_base.dir/DependInfo.cmake"
  "/root/repo/build/src/experiments/CMakeFiles/cam_experiments.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
