file(REMOVE_RECURSE
  "CMakeFiles/abl_geography.dir/abl_geography.cpp.o"
  "CMakeFiles/abl_geography.dir/abl_geography.cpp.o.d"
  "abl_geography"
  "abl_geography.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_geography.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
