# Empty compiler generated dependencies file for abl_geography.
# This may be replaced when dependencies are built.
