file(REMOVE_RECURSE
  "CMakeFiles/abl_lookup_hops.dir/abl_lookup_hops.cpp.o"
  "CMakeFiles/abl_lookup_hops.dir/abl_lookup_hops.cpp.o.d"
  "abl_lookup_hops"
  "abl_lookup_hops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_lookup_hops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
