# Empty dependencies file for abl_lookup_hops.
# This may be replaced when dependencies are built.
