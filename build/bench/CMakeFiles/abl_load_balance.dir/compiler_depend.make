# Empty compiler generated dependencies file for abl_load_balance.
# This may be replaced when dependencies are built.
