file(REMOVE_RECURSE
  "CMakeFiles/abl_load_balance.dir/abl_load_balance.cpp.o"
  "CMakeFiles/abl_load_balance.dir/abl_load_balance.cpp.o.d"
  "abl_load_balance"
  "abl_load_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_load_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
