file(REMOVE_RECURSE
  "CMakeFiles/abl_streaming.dir/abl_streaming.cpp.o"
  "CMakeFiles/abl_streaming.dir/abl_streaming.cpp.o.d"
  "abl_streaming"
  "abl_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
