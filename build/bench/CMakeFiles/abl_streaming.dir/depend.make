# Empty dependencies file for abl_streaming.
# This may be replaced when dependencies are built.
