# Empty dependencies file for abl_capacity_dist.
# This may be replaced when dependencies are built.
