file(REMOVE_RECURSE
  "CMakeFiles/abl_capacity_dist.dir/abl_capacity_dist.cpp.o"
  "CMakeFiles/abl_capacity_dist.dir/abl_capacity_dist.cpp.o.d"
  "abl_capacity_dist"
  "abl_capacity_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_capacity_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
