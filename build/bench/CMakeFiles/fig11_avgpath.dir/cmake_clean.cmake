file(REMOVE_RECURSE
  "CMakeFiles/fig11_avgpath.dir/fig11_avgpath.cpp.o"
  "CMakeFiles/fig11_avgpath.dir/fig11_avgpath.cpp.o.d"
  "fig11_avgpath"
  "fig11_avgpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_avgpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
