# Empty dependencies file for fig11_avgpath.
# This may be replaced when dependencies are built.
