# Empty compiler generated dependencies file for abl_tree_balance.
# This may be replaced when dependencies are built.
