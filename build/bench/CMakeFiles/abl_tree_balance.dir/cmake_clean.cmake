file(REMOVE_RECURSE
  "CMakeFiles/abl_tree_balance.dir/abl_tree_balance.cpp.o"
  "CMakeFiles/abl_tree_balance.dir/abl_tree_balance.cpp.o.d"
  "abl_tree_balance"
  "abl_tree_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_tree_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
