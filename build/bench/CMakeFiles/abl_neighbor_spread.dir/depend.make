# Empty dependencies file for abl_neighbor_spread.
# This may be replaced when dependencies are built.
