file(REMOVE_RECURSE
  "CMakeFiles/abl_neighbor_spread.dir/abl_neighbor_spread.cpp.o"
  "CMakeFiles/abl_neighbor_spread.dir/abl_neighbor_spread.cpp.o.d"
  "abl_neighbor_spread"
  "abl_neighbor_spread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_neighbor_spread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
