file(REMOVE_RECURSE
  "CMakeFiles/abl_async_overhead.dir/abl_async_overhead.cpp.o"
  "CMakeFiles/abl_async_overhead.dir/abl_async_overhead.cpp.o.d"
  "abl_async_overhead"
  "abl_async_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_async_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
