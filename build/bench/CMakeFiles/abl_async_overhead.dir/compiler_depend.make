# Empty compiler generated dependencies file for abl_async_overhead.
# This may be replaced when dependencies are built.
