# Empty dependencies file for abl_churn_resilience.
# This may be replaced when dependencies are built.
