file(REMOVE_RECURSE
  "CMakeFiles/abl_churn_resilience.dir/abl_churn_resilience.cpp.o"
  "CMakeFiles/abl_churn_resilience.dir/abl_churn_resilience.cpp.o.d"
  "abl_churn_resilience"
  "abl_churn_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_churn_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
