# Empty compiler generated dependencies file for abl_pns.
# This may be replaced when dependencies are built.
