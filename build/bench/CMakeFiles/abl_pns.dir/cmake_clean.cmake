file(REMOVE_RECURSE
  "CMakeFiles/abl_pns.dir/abl_pns.cpp.o"
  "CMakeFiles/abl_pns.dir/abl_pns.cpp.o.d"
  "abl_pns"
  "abl_pns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_pns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
