file(REMOVE_RECURSE
  "CMakeFiles/abl_maintenance.dir/abl_maintenance.cpp.o"
  "CMakeFiles/abl_maintenance.dir/abl_maintenance.cpp.o.d"
  "abl_maintenance"
  "abl_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
