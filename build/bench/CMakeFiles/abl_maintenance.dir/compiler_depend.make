# Empty compiler generated dependencies file for abl_maintenance.
# This may be replaced when dependencies are built.
