file(REMOVE_RECURSE
  "CMakeFiles/fig10_pathdist_camkoorde.dir/fig10_pathdist_camkoorde.cpp.o"
  "CMakeFiles/fig10_pathdist_camkoorde.dir/fig10_pathdist_camkoorde.cpp.o.d"
  "fig10_pathdist_camkoorde"
  "fig10_pathdist_camkoorde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_pathdist_camkoorde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
