# Empty compiler generated dependencies file for fig10_pathdist_camkoorde.
# This may be replaced when dependencies are built.
