# Empty compiler generated dependencies file for fig09_pathdist_camchord.
# This may be replaced when dependencies are built.
