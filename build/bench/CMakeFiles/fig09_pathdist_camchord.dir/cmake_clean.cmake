file(REMOVE_RECURSE
  "CMakeFiles/fig09_pathdist_camchord.dir/fig09_pathdist_camchord.cpp.o"
  "CMakeFiles/fig09_pathdist_camchord.dir/fig09_pathdist_camchord.cpp.o.d"
  "fig09_pathdist_camchord"
  "fig09_pathdist_camchord.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_pathdist_camchord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
