// camsim — command-line driver for the CAM multicast simulator.
//
// All subcommands share ONE flag table (src/runtime/flags.h): every
// option parses the same way everywhere, unknown flags are hard errors,
// and `camsim <cmd>` with a bad flag prints the generated option list.
// Sweep flags, available to every subcommand that runs seeded cells:
//
//   --seeds=A..B   run one cell per seed in [A..B] (sweep mode) instead
//                  of the single --seed run
//   --jobs=N       execute sweep cells on N worker threads (0 = hardware
//                  concurrency); output is byte-identical for any N
//   --out=FILE     redirect stdout to FILE
//
// Subcommands:
//   camsim multicast  --strategy=KEY[,KEY...] (see `camsim multicast
//                     --strategy=?` for the registry; --system is a
//                     deprecated alias) [--n=N] [--bits=B]
//                     [--cap=LO:HI | --p=KBPS] [--param=C] [--sources=K]
//                     [--seed=S] [--histogram] [--seeds=A..B] [--jobs=N]
//       Runs K multicasts over a converged overlay and prints tree
//       metrics (throughput, path lengths, children, optional
//       histogram). With --seeds, runs one independent world per seed
//       (population + sources reseeded) in parallel and prints a
//       per-seed table plus the mean row. A comma list runs every
//       named strategy over the same worlds — the head-to-head grid.
//
//   camsim lookup     --strategy=KEY[,KEY...] [--n=N] [--bits=B]
//                     [--cap=LO:HI] [--queries=Q] [--seed=S] [--param=C]
//       Runs Q random lookups per routing-capable strategy and prints
//       hop statistics, one row per strategy.
//
//   camsim churn      [--n=N] [--fail=FRAC] [--seed=S]
//       Protocol-mode churn scenario: delivery before/after repair.
//
//   camsim stream     [--n=N] [--p=KBPS] [--packets=K] [--seed=S]
//       Packet-level streaming over a CAM-Chord tree.
//
//   camsim async      --strategy=camchord|camkoorde [--n=N] [--bits=B]
//                     [--cap=LO:HI] [--loss=P] [--retries=K] [--seed=S]
//                     [--trace=FILE] [--timeline=FILE] [--metrics=FILE]
//                     [--metrics-csv=FILE] [--trace-all]
//       Fully asynchronous protocol-mode multicast with the telemetry
//       subsystem attached: grows the overlay, runs one multicast,
//       verifies that the trace replays to the recorded tree, prints a
//       telemetry summary, and dumps the JSON Lines trace / timeline /
//       metrics snapshot to the given files.
//
//   camsim chaos      --strategy=KEY[,KEY...] [--n=N] [--bits=B]
//                     [--cap=LO:HI] [--seed=S] [--plan=FILE]
//                     [--plan-text=DSL] [--settle=MS] [--no-quiesce]
//                     [--repair|--no-repair] [--seeds=A..B] [--jobs=N]
//       Deterministic fault-injection run (src/fault): grows the
//       overlay, executes a FaultPlan (drops, duplicates, reordering,
//       partitions, churn — see fault/fault_plan.h for the DSL), checks
//       every protocol invariant, and prints the full report including
//       the realized fault journal and telemetry counters. The report
//       is a deterministic function of (options, plan): rerunning with
//       the same seed reproduces it byte for byte. Exits nonzero on any
//       invariant violation. Without --plan/--plan-text a stock mixed
//       plan is used; --no-quiesce skips the heal + re-stabilize phase
//       (the final checks then run against the still-faulted overlay).
//       The delivery-repair layer (orphan-region re-delegation +
//       anti-entropy pulls) is on by default; --no-repair disables it
//       to measure the unrepaired baseline, and the eventual-delivery
//       invariant then reports every surviving member a mid-fault
//       multicast failed to reach. With --seeds, the whole chaos world
//       is rerun once per seed (cells run in parallel under --jobs) and
//       one compact line is printed per seed plus a sweep summary; the
//       exit code is nonzero if ANY seed violated an invariant.
//
//   camsim groups     --strategy=camchord|camkoorde [--n=N] [--bits=B]
//                     [--cap=LO:HI] [--seed=S] [--plan=FILE]
//                     [--plan-text=DSL] [--ngroups=G] [--group-max=M]
//                     [--mode=shared|ledger] [--packets=K]
//                     [--stream-groups=K] [--chaos] [--detect]
//                     [--no-standby] [--no-park] [--hb=MS]
//                     [--stream-crash] [--seeds=A..B] [--jobs=N]
//       Many-group session layer (src/session): expands a WorkloadPlan
//       (workload/session_workload.h DSL — zipf group fleets, flash
//       crowds, diurnal churn, regional failure bursts; default: one
//       zipf fleet of --ngroups groups) into a membership script,
//       replays it through capacity-aware admission against the shared
//       CapacityLedger, then streams the surviving groups concurrently
//       through the multi-group dataplane and prints the aggregate
//       scoreboard (goodput, Jain fairness, p99 latency) plus per-group
//       lines. --mode picks the service discipline (shared FIFO uplink
//       vs per-group ledger shares). With --chaos the session chaos
//       harness runs instead: group-level invariants are swept during
//       the replay and the full deterministic report is printed (exits
//       nonzero on any violation). --detect switches the chaos harness
//       to detection-driven failover: workload crashes are discovered
//       by the heartbeat failure detector (announce at the first live
//       watcher's suspicion deadline) instead of applied by the oracle,
//       with standby re-hangs and graceful degradation on by default
//       (--no-standby / --no-park turn them off, --hb sets the
//       heartbeat period, --stream-crash also kills one interior member
//       mid-stream and drives the dataplane FailoverScript from the
//       detector). --seeds sweeps whole worlds in parallel, one compact
//       line per seed, byte-identical for any --jobs.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>

#include "camchord/net.h"
#include "camchord/oracle.h"
#include "experiments/runner.h"
#include "experiments/table.h"
#include "experiments/telemetry_report.h"
#include "fault/chaos_run.h"
#include "fault/session_chaos.h"
#include "multicast/metrics.h"
#include "proto/async_camchord.h"
#include "proto/async_camkoorde.h"
#include "runtime/cells.h"
#include "runtime/flags.h"
#include "strategy/chaos.h"
#include "strategy/strategy.h"
#include "stream/streaming.h"
#include "telemetry/export.h"
#include "util/rng.h"
#include "workload/churn.h"
#include "workload/population.h"

namespace {

using namespace cam;
using namespace cam::exp;

struct Args {
  std::string command;
  std::string strategy = "camchord";  // registry key, or comma list
  std::size_t n = 10'000;
  int bits = 19;
  std::uint32_t cap_lo = 4, cap_hi = 10;
  double p = 0;  // 0 = use --cap range instead
  std::uint32_t param = 8;
  std::size_t sources = 3;
  std::size_t queries = 200;
  double fail = 0.15;
  std::uint32_t packets = 48;
  std::uint64_t seed = 1;
  bool histogram = false;
  // sweep mode (any seeded subcommand)
  runtime::SeedRange seeds;
  bool sweep = false;  // --seeds was given explicitly
  std::size_t jobs = 1;
  std::string out_file;
  // async subcommand
  double loss = 0;
  int retries = 2;
  std::string trace_file;
  std::string timeline_file;
  std::string metrics_file;
  std::string metrics_csv_file;
  bool trace_all = false;
  // chaos subcommand
  std::string plan_file;
  std::string plan_text;
  double settle_ms = 240'000;
  bool no_quiesce = false;
  bool repair = true;
  // groups subcommand
  std::size_t ngroups = 16;
  std::uint32_t group_max = 32;
  std::string mode = "shared";
  std::size_t stream_groups = 0;
  bool session_chaos = false;
  bool detect = false;
  bool standby = true;
  bool park = true;
  double hb_period_ms = 2.0;
  bool stream_crash = false;
};

/// The one flag table every subcommand parses against. Registering all
/// flags in a single set keeps "--seed means the same thing everywhere"
/// true by construction and makes usage() self-maintaining.
runtime::FlagSet make_flags(Args& a) {
  runtime::FlagSet f;
  f.add("strategy",
        "tree strategy key (comma list for head-to-head): " +
            strategy::registry().joined_names(),
        &a.strategy);
  f.add("n", "group size", &a.n);
  f.add("bits", "ring identifier bits", &a.bits);
  f.add_parsed("cap", "capacity range LO:HI (uniform population)",
               [&a](const std::string& v, std::string* error) {
                 auto colon = v.find(':');
                 std::uint64_t lo = 0, hi = 0;
                 if (colon == std::string::npos ||
                     !runtime::detail::parse_u64(v.substr(0, colon), &lo,
                                                 error) ||
                     !runtime::detail::parse_u64(v.substr(colon + 1), &hi,
                                                 error)) {
                   *error = "expected LO:HI";
                   return false;
                 }
                 a.cap_lo = static_cast<std::uint32_t>(lo);
                 a.cap_hi = static_cast<std::uint32_t>(hi);
                 return true;
               });
  f.add("p", "per-link kbps (bandwidth-derived population)", &a.p);
  f.add("param", "structural parameter for chord/koorde", &a.param);
  f.add("sources", "multicast trees per run", &a.sources);
  f.add("queries", "lookup queries", &a.queries);
  f.add("fail", "failed fraction (churn)", &a.fail);
  f.add("packets", "stream packets", &a.packets);
  f.add("seed", "master seed (single run)", &a.seed);
  f.add("seeds", "seed sweep A..B (one cell per seed)", &a.seeds);
  f.add("jobs", "parallel sweep workers (0 = hardware)", &a.jobs);
  f.add("out", "redirect stdout to FILE", &a.out_file);
  f.add_switch("histogram", "print the depth histogram", &a.histogram);
  f.add("loss", "datagram loss probability (async)", &a.loss);
  f.add("retries", "multicast retransmissions (async)", &a.retries);
  f.add("trace", "write JSONL trace to FILE", &a.trace_file);
  f.add("timeline", "write event timeline to FILE", &a.timeline_file);
  f.add("metrics", "write metrics JSON to FILE", &a.metrics_file);
  f.add("metrics-csv", "write metrics CSV to FILE", &a.metrics_csv_file);
  f.add_switch("trace-all", "trace every event type", &a.trace_all);
  f.add("plan", "read the fault plan DSL from FILE", &a.plan_file);
  f.add("plan-text", "inline fault plan DSL", &a.plan_text);
  f.add("settle", "post-heal settle budget ms (chaos)", &a.settle_ms);
  f.add_switch("no-quiesce", "skip heal + re-stabilize (chaos)",
               &a.no_quiesce);
  f.add_switch("repair", "enable the delivery-repair layer", &a.repair);
  f.add_switch("no-repair", "disable the delivery-repair layer", &a.repair,
               false);
  f.add("ngroups", "default workload: zipf fleet size (groups)", &a.ngroups);
  f.add("group-max", "default workload: largest group size", &a.group_max);
  f.add("mode", "session scheduling: shared|ledger", &a.mode);
  f.add("stream-groups", "cap on streamed groups (0 = all)",
        &a.stream_groups);
  f.add_switch("chaos", "run the session invariant/chaos harness (groups)",
               &a.session_chaos);
  f.add_switch("detect", "detection-driven failover (groups --chaos)",
               &a.detect);
  f.add_switch("no-standby", "disable standby parents (--detect)",
               &a.standby, false);
  f.add_switch("no-park", "disable graceful degradation (--detect)",
               &a.park, false);
  f.add("hb", "heartbeat period ms (--detect)", &a.hb_period_ms);
  f.add_switch("stream-crash", "mid-stream detected crash (--detect)",
               &a.stream_crash);
  return f;
}

[[noreturn]] void usage(const std::string& detail = {}) {
  Args defaults;
  runtime::FlagSet f = make_flags(defaults);
  if (!detail.empty()) std::fprintf(stderr, "camsim: %s\n", detail.c_str());
  std::fprintf(stderr,
               "usage: camsim <multicast|lookup|churn|stream|async|chaos"
               "|groups> "
               "[options]\noptions (shared by all subcommands):\n%s",
               f.usage().c_str());
  std::exit(2);
}

Args parse(int argc, char** argv) {
  if (argc < 2) usage();
  Args a;
  a.command = argv[1];
  runtime::FlagSet f = make_flags(a);
  std::string error;
  if (!f.parse(argc, argv, 2, &error)) usage(error);
  a.sweep = f.provided("seeds");
  return a;
}

/// Splits --strategy's comma list and validates every key against the
/// registry; unknown names list the registered keys in the error.
std::vector<std::string> strategies_of(const Args& a) {
  std::vector<std::string> keys;
  std::size_t pos = 0;
  while (pos <= a.strategy.size()) {
    std::size_t comma = a.strategy.find(',', pos);
    if (comma == std::string::npos) comma = a.strategy.size();
    std::string key = a.strategy.substr(pos, comma - pos);
    if (!key.empty()) keys.push_back(std::move(key));
    pos = comma + 1;
  }
  if (keys.empty()) usage("--strategy needs at least one name");
  for (const std::string& key : keys) {
    if (strategy::registry().find(key) == nullptr) {
      usage("unknown strategy '" + key + "' (registered: " +
            strategy::registry().joined_names() + ")");
    }
  }
  return keys;
}

/// Structural knobs shared by every subcommand: --param feeds the
/// Chord base / Koorde degree and the rivals' uniform provisioning.
strategy::StrategyParams params_of(const Args& a) {
  strategy::StrategyParams p;
  p.uniform_degree = a.param;
  p.geo_neighbors = a.param;
  p.degree_bound = a.param;
  return p;
}

/// The population recipe one cell materializes: seeded per cell so a
/// seed sweep reruns the whole world, not just the source draw.
runtime::PopulationRecipe recipe(const Args& a, std::uint64_t seed) {
  workload::PopulationSpec spec;
  spec.n = a.n;
  spec.ring_bits = a.bits;
  spec.seed = seed;
  if (a.p > 0) {
    return runtime::PopulationRecipe::bandwidth_derived(spec, a.p, 4);
  }
  return runtime::PopulationRecipe::uniform(spec, a.cap_lo, a.cap_hi);
}

int cmd_multicast(const Args& a) {
  const std::vector<std::string> keys = strategies_of(a);
  const strategy::StrategyParams params = params_of(a);
  if (a.sweep || keys.size() > 1) {
    // One cell per (strategy, seed), executed on the sweep pool. With a
    // comma list this is the head-to-head grid: same populations, same
    // source draws, one row per cell plus a mean row per strategy. The
    // rows and the means are identical for any --jobs value.
    std::vector<runtime::CellSpec> cells;
    const std::uint64_t seed_lo = a.sweep ? a.seeds.lo : a.seed;
    const std::uint64_t seed_hi = a.sweep ? a.seeds.hi : a.seed;
    for (const std::string& key : keys) {
      for (std::uint64_t s = seed_lo; s <= seed_hi; ++s) {
        runtime::CellSpec cell;
        cell.strategy = key;
        cell.population = recipe(a, s);
        cell.sources = a.sources;
        cell.seed = s;
        cell.params = params;
        cells.push_back(cell);
      }
    }
    std::vector<AveragedRun> runs =
        runtime::run_cells(cells, {.jobs = a.jobs});

    std::printf("strategies        %s\n", a.strategy.c_str());
    std::printf("seeds             %llu..%llu (%zu cells, %zu trees each)\n",
                static_cast<unsigned long long>(seed_lo),
                static_cast<unsigned long long>(seed_hi), runs.size(),
                a.sources);
    Table table({"strategy", "seed", "reached", "children", "degree", "kbps",
                 "provisioned", "path", "maxdepth"});
    const std::size_t per = seed_hi - seed_lo + 1;
    for (std::size_t ki = 0; ki < keys.size(); ++ki) {
      double children = 0, degree = 0, kbps = 0, prov = 0, path = 0,
             depth = 0;
      for (std::size_t i = ki * per; i < (ki + 1) * per; ++i) {
        const AveragedRun& r = runs[i];
        table.add_row({keys[ki], std::to_string(cells[i].seed),
                       std::to_string(r.reached) + "/" +
                           std::to_string(r.expected),
                       fmt(r.avg_children), fmt(r.avg_degree),
                       fmt(r.throughput_kbps, 1), fmt(r.provisioned_kbps, 1),
                       fmt(r.avg_path), fmt(r.max_depth, 1)});
        children += r.avg_children;
        degree += r.avg_degree;
        kbps += r.throughput_kbps;
        prov += r.provisioned_kbps;
        path += r.avg_path;
        depth += r.max_depth;
      }
      auto k = static_cast<double>(per);
      table.add_row({keys[ki], "mean", "-", fmt(children / k),
                     fmt(degree / k), fmt(kbps / k, 1), fmt(prov / k, 1),
                     fmt(path / k), fmt(depth / k, 1)});
    }
    table.print(std::cout);
    return 0;
  }

  const auto& strat = strategy::registry().make(keys.front());
  FrozenDirectory dir = recipe(a, a.seed).build();
  AveragedRun r = run_sources(strat, dir, a.sources, a.seed, params);
  std::printf("strategy          %s\n",
              std::string(strat.display_name()).c_str());
  std::printf("members           %zu (reached %zu)\n", r.expected, r.reached);
  std::printf("avg children      %.2f (provisioned degree %.2f)\n",
              r.avg_children, r.avg_degree);
  std::printf("throughput        %.1f kbps realized, %.1f kbps provisioned\n",
              r.throughput_kbps, r.provisioned_kbps);
  std::printf("path length       %.2f avg, %.1f max\n", r.avg_path,
              r.max_depth);
  if (a.histogram) {
    std::printf("hops  nodes\n");
    for (std::size_t h = 0; h < r.depth_histogram.size(); ++h) {
      std::printf("%4zu  %llu\n", h,
                  static_cast<unsigned long long>(r.depth_histogram[h]));
    }
  }
  return 0;
}

int cmd_lookup(const Args& a) {
  const std::vector<std::string> keys = strategies_of(a);
  const strategy::StrategyParams params = params_of(a);
  FrozenDirectory dir = recipe(a, a.seed).build();
  Table table({"strategy", "queries", "failed", "mean_hops", "max_hops"});
  for (const std::string& key : keys) {
    const auto& strat = strategy::registry().make(key);
    if (!strat.supports_lookup()) {
      std::fprintf(stderr,
                   "camsim: strategy '%s' does not support lookup "
                   "(pure tree builder)\n",
                   key.c_str());
      if (keys.size() == 1) return 2;
      continue;
    }
    Rng rng(a.seed ^ 0x1001);
    double total = 0;
    std::size_t max_hops = 0, failed = 0;
    for (std::size_t q = 0; q < a.queries; ++q) {
      Id from = dir.ids()[rng.next_below(dir.size())];
      Id k = rng.next_below(dir.ring().size());
      LookupResult r = strat.lookup(dir, from, k, params);
      if (!r.ok) {
        ++failed;
        continue;
      }
      total += static_cast<double>(r.hops());
      max_hops = std::max(max_hops, r.hops());
    }
    table.add_row(
        {key, std::to_string(a.queries), std::to_string(failed),
         fmt(total / static_cast<double>(a.queries - failed), 2),
         std::to_string(max_hops)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_churn(const Args& a) {
  RingSpace ring(a.bits);
  Simulator sim;
  ConstantLatency lat(1.0);
  Network net(sim, lat);
  camchord::CamChordNet overlay(ring, net);
  Rng rng(a.seed);
  overlay.bootstrap(rng.next_below(ring.size()),
                    {.capacity = a.cap_hi, .bandwidth_kbps = 700});
  workload::join_random(overlay, a.n - 1, a.cap_lo, a.cap_hi, 400, 1000, rng);
  overlay.converge();
  std::printf("members   %zu converged\n", overlay.size());

  workload::fail_random_fraction(overlay, a.fail, rng);
  auto members = overlay.members_sorted();
  MulticastTree before = overlay.multicast(members.front());
  std::printf("failed    %.0f%%: delivery %.1f%% before repair\n",
              a.fail * 100,
              100.0 * static_cast<double>(before.size()) /
                  static_cast<double>(overlay.size()));
  overlay.converge();
  MulticastTree after = overlay.multicast(members.front());
  std::printf("repaired  delivery %.1f%% after converge\n",
              100.0 * static_cast<double>(after.size()) /
                  static_cast<double>(overlay.size()));
  return 0;
}

int cmd_stream(const Args& a) {
  Args b = a;
  if (b.p == 0) b.p = 100;
  FrozenDirectory dir = recipe(b, b.seed).build();
  auto cap = [&dir](Id x) { return dir.info(x).capacity; };
  auto bw = [&dir](Id x) { return dir.info(x).bandwidth_kbps; };
  MulticastTree tree =
      camchord::multicast(dir.ring(), dir, cap, dir.ids()[0]);
  ConstantLatency lat(10.0);
  StreamConfig cfg;
  cfg.num_packets = b.packets;
  StreamResult r = stream_over_tree(tree, bw, lat, cfg);
  std::printf("receivers        %zu\n", r.receivers);
  std::printf("session rate     %.1f kbps (analytic %.1f)\n",
              r.session_rate_kbps, tree_throughput_kbps(tree, bw));
  std::printf("first packet     %.0f ms to the slowest receiver\n",
              r.max_first_packet_ms);
  std::printf("full stream      %.0f ms\n", r.completion_ms);
  return 0;
}

// Protocol-mode multicast with the telemetry stack attached end to end.
// The registry counts from the first join; the tracer is attached only
// after convergence so the bounded ring holds the multicast rather than
// megabytes of maintenance chatter (pass --trace-all to widen the mask).
int cmd_async(const Args& a) {
  RingSpace ring(a.bits);
  Simulator sim;
  UniformLatency lat(5, 25, a.seed ^ 0x5eed);
  Network net(sim, lat);
  proto::HostBus bus(net);
  proto::AsyncConfig cfg;
  cfg.multicast_retries = a.retries;
  Rng rng(a.seed);

  // Sinks precede the overlay: they must outlive the host attached to
  // them. Capacity scales with n so nothing milestone-rated is evicted.
  telemetry::Registry reg;
  std::size_t cap = std::max<std::size_t>(std::size_t{1} << 16, 64 * a.n);
  telemetry::Tracer tracer(cap, a.trace_all ? telemetry::kAllEvents
                                            : telemetry::kMilestoneEvents);

  std::unique_ptr<proto::AsyncOverlayNet> overlay;
  if (a.strategy == "camchord") {
    overlay = std::make_unique<proto::AsyncCamChordNet>(ring, bus, cfg);
  } else if (a.strategy == "camkoorde") {
    overlay = std::make_unique<proto::AsyncCamKoordeNet>(ring, bus, cfg);
  } else {
    usage("async needs --strategy=camchord|camkoorde (protocol-mode "
          "stacks exist only for the CAMs)");
  }

  overlay->set_telemetry({&reg, nullptr});

  auto info = [&] {
    return NodeInfo{
        static_cast<std::uint32_t>(rng.uniform(a.cap_lo, a.cap_hi)),
        400 + rng.next_double() * 600};
  };
  overlay->bootstrap(rng.next_below(ring.size()), info());
  overlay->run_for(500);
  while (overlay->size() < a.n) {
    std::size_t batch = std::min<std::size_t>(8, a.n - overlay->size());
    auto members = overlay->members_sorted();
    for (std::size_t i = 0; i < batch; ++i) {
      Id id = rng.next_below(ring.size());
      if (overlay->running(id)) continue;
      overlay->spawn(id, info(), members[rng.next_below(members.size())]);
    }
    overlay->run_for(400);
  }
  SimTime deadline = sim.now() + 240'000;
  while (sim.now() < deadline && overlay->ring_consistency() < 1.0) {
    overlay->run_for(2'000);
  }
  overlay->run_for(30'000);  // entry refresh
  std::printf("members      %zu (ring consistency %.3f)\n", overlay->size(),
              overlay->ring_consistency());

  // Trace from here on: the multicast and whatever maintenance the mask
  // admits.
  overlay->set_telemetry({&reg, &tracer});
  if (a.loss > 0) bus.set_loss(a.loss, a.seed ^ 0x1055);

  Id source = overlay->members_sorted()[rng.next_below(overlay->size())];
  MulticastTree tree = overlay->multicast(source);
  int max_depth = 0;
  for (const auto& [id, rec] : tree.entries()) {
    max_depth = std::max(max_depth, rec.depth);
  }
  std::printf("multicast    source %llu reached %zu/%zu, max depth %d\n",
              static_cast<unsigned long long>(source), tree.size(),
              overlay->size(), max_depth);

  // Replay the trace and check it reconstructs the recorded tree exactly.
  auto events = tracer.events();
  auto replayed =
      telemetry::replay_multicast(events, overlay->last_stream_id());
  std::size_t mismatches = 0;
  if (replayed.size() != tree.entries().size()) {
    ++mismatches;
  } else {
    for (const auto& [id, rec] : tree.entries()) {
      auto it = replayed.find(id);
      if (it == replayed.end() || it->second.parent != rec.parent ||
          it->second.depth != rec.depth) {
        ++mismatches;
      }
    }
  }
  std::printf("replay       %s (%zu deliveries from %zu traced events%s)\n",
              mismatches == 0 ? "ok — trace matches recorded tree"
                              : "MISMATCH",
              replayed.size(), events.size(),
              tracer.dropped() > 0 ? ", ring overflowed" : "");

  auto dump = [](const std::string& path, const std::string& what,
                 auto&& writer) {
    if (path.empty()) return;
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "camsim: cannot open %s\n", path.c_str());
      return;
    }
    writer(out);
    std::printf("wrote        %s (%s)\n", path.c_str(), what.c_str());
  };
  dump(a.trace_file, "JSONL trace",
       [&](std::ostream& o) { telemetry::write_jsonl(events, o); });
  dump(a.timeline_file, "timeline",
       [&](std::ostream& o) { telemetry::write_timeline(events, o); });
  dump(a.metrics_file, "metrics JSON",
       [&](std::ostream& o) { telemetry::write_json(reg, o); });
  dump(a.metrics_csv_file, "metrics CSV",
       [&](std::ostream& o) { telemetry::write_csv(reg, o); });

  std::printf("\n");
  print_telemetry_summary(reg, std::cout);
  return mismatches == 0 ? 0 : 1;
}

// Deterministic fault-injection run; see src/fault/chaos_run.h.
int cmd_chaos(const Args& a) {
  fault::FaultPlan plan = fault::default_chaos_plan();
  if (!a.plan_file.empty() || !a.plan_text.empty()) {
    std::string text = a.plan_text;
    if (!a.plan_file.empty()) {
      std::ifstream in(a.plan_file);
      if (!in) {
        std::fprintf(stderr, "camsim: cannot open %s\n",
                     a.plan_file.c_str());
        return 2;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      text = buf.str();
    }
    std::string error;
    auto parsed = fault::FaultPlan::parse(text, &error);
    if (!parsed) {
      std::fprintf(stderr, "camsim: bad plan: %s\n", error.c_str());
      return 2;
    }
    plan = std::move(*parsed);
  }

  const std::vector<std::string> keys = strategies_of(a);
  bool all_protocol = true;
  for (const std::string& key : keys) {
    if (!strategy::registry().make(key).has_protocol_mode()) {
      all_protocol = false;
    }
  }
  // Strategies without an async protocol stack (and comma-list
  // head-to-heads) run the oracle chaos harness instead: build the
  // tree, kill --fail of the non-source members, count survivors the
  // frozen tree still reaches, then rebuild over the healed membership.
  if (!all_protocol || keys.size() > 1) {
    const strategy::StrategyParams params = params_of(a);
    const std::uint64_t seed_lo = a.sweep ? a.seeds.lo : a.seed;
    const std::uint64_t seed_hi = a.sweep ? a.seeds.hi : a.seed;
    std::printf("oracle chaos strategies=%s fail=%.2f seeds=%llu..%llu\n",
                a.strategy.c_str(), a.fail,
                static_cast<unsigned long long>(seed_lo),
                static_cast<unsigned long long>(seed_hi));
    Table t({"strategy", "seed", "members", "killed", "delivered",
             "delivery", "rebuilt"});
    for (const std::string& key : keys) {
      const auto& strat = strategy::registry().make(key);
      for (std::uint64_t s = seed_lo; s <= seed_hi; ++s) {
        FrozenDirectory dir = recipe(a, s).build();
        Rng rng(s);
        const Id source = dir.ids()[rng.next_below(dir.size())];
        strategy::OracleChaosConfig ccfg;
        ccfg.kill_fraction = a.fail;
        ccfg.seed = s ^ 0xC4A05;
        const strategy::OracleChaosReport r =
            strategy::run_oracle_chaos(strat, dir, source, params, ccfg);
        t.add_row({key, std::to_string(s), std::to_string(r.members),
                   std::to_string(r.killed), std::to_string(r.delivered),
                   fmt(r.delivery_ratio, 3), fmt(r.rebuilt_ratio, 3)});
      }
    }
    t.print(std::cout);
    return 0;
  }

  fault::ChaosConfig cfg;
  cfg.system = keys.front();
  cfg.n = a.n;
  cfg.bits = a.bits;
  cfg.seed = a.seed;
  cfg.spawn.cap_lo = a.cap_lo;
  cfg.spawn.cap_hi = a.cap_hi;
  cfg.quiesce_budget_ms = a.settle_ms;
  cfg.force_quiescence = !a.no_quiesce;
  cfg.async.repair = a.repair;

  if (!a.sweep) {
    fault::ChaosReport report = fault::run_chaos(cfg, plan);
    std::fputs(report.render().c_str(), stdout);
    return report.ok ? 0 : 1;
  }

  // Seed sweep: one full chaos world per seed, run on the sweep pool.
  // Per-seed lines are compact (full reports would bury a violation in
  // megabytes); rerun the failing seed without --seeds for the full
  // deterministic report.
  std::vector<fault::ChaosCell> cells;
  for (std::uint64_t s = a.seeds.lo; s <= a.seeds.hi; ++s) {
    fault::ChaosCell cell{cfg, plan};
    cell.cfg.seed = s;
    cells.push_back(std::move(cell));
  }
  std::vector<fault::ChaosReport> reports =
      fault::run_chaos_cells(cells, a.jobs);

  std::printf("chaos sweep system=%s n=%zu bits=%d seeds=%llu..%llu\n",
              cfg.system.c_str(), cfg.n, cfg.bits,
              static_cast<unsigned long long>(a.seeds.lo),
              static_cast<unsigned long long>(a.seeds.hi));
  std::size_t bad = 0;
  double eventual_sum = 0;
  std::size_t eventual_count = 0;
  for (const fault::ChaosReport& r : reports) {
    for (const fault::ChaosMulticast& m : r.multicasts) {
      if (m.eligible > 0) {
        eventual_sum += m.eventual_ratio();
        ++eventual_count;
      }
    }
    if (r.ok) {
      std::printf("seed=%llu ok members=%zu consistency=%.3f\n",
                  static_cast<unsigned long long>(r.cfg.seed), r.members,
                  r.consistency);
      continue;
    }
    ++bad;
    // Deduplicate violation kinds so the line stays one line.
    std::set<std::string> kinds;
    for (const fault::Violation& v : r.violations) kinds.insert(v.check);
    std::string joined;
    for (const std::string& k : kinds) {
      if (!joined.empty()) joined += ",";
      joined += k;
    }
    std::printf("seed=%llu VIOLATIONS n=%zu kinds=%s\n",
                static_cast<unsigned long long>(r.cfg.seed),
                r.violations.size(), joined.c_str());
  }
  std::printf("summary: %zu/%zu seeds ok", reports.size() - bad,
              reports.size());
  if (eventual_count > 0) {
    std::printf(", mean eventual delivery %.3f",
                eventual_sum / static_cast<double>(eventual_count));
  }
  std::printf("\n");
  return bad == 0 ? 0 : 1;
}

// Many-group session layer runs; see src/session and
// src/workload/session_workload.h.
int cmd_groups(const Args& a) {
  if (a.strategy != "camchord" && a.strategy != "camkoorde") {
    usage("groups needs --strategy=camchord|camkoorde (session placement "
          "routes lookups over the member overlay)");
  }

  workload::WorkloadPlan plan;
  if (!a.plan_file.empty() || !a.plan_text.empty()) {
    std::string text = a.plan_text;
    if (!a.plan_file.empty()) {
      std::ifstream in(a.plan_file);
      if (!in) {
        std::fprintf(stderr, "camsim: cannot open %s\n",
                     a.plan_file.c_str());
        return 2;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      text = buf.str();
    }
    std::string error;
    auto parsed = workload::WorkloadPlan::parse(text, &error);
    if (!parsed) {
      std::fprintf(stderr, "camsim: bad workload plan: %s\n",
                   error.c_str());
      return 2;
    }
    plan = std::move(*parsed);
  } else {
    plan.groups(static_cast<std::uint32_t>(a.ngroups), 1.0, 2,
                a.group_max);
  }

  session::SchedMode mode;
  if (a.mode == "shared") {
    mode = session::SchedMode::kShared;
  } else if (a.mode == "ledger") {
    mode = session::SchedMode::kLedgerShares;
  } else {
    usage("groups needs --mode=shared|ledger");
  }

  if (a.session_chaos) {
    fault::SessionChaosConfig cfg;
    cfg.system = a.strategy;
    cfg.n = a.n;
    cfg.bits = a.bits;
    cfg.seed = a.seed;
    cfg.cap_lo = a.cap_lo;
    cfg.cap_hi = a.cap_hi;
    cfg.stream_packets = a.packets;
    cfg.mode = mode;
    if (a.stream_groups != 0) cfg.stream_groups = a.stream_groups;
    cfg.detect = a.detect;
    cfg.standby = a.standby;
    cfg.park = a.park;
    cfg.hb_period_ms = a.hb_period_ms;
    cfg.stream_crash = a.stream_crash;

    if (!a.sweep) {
      fault::SessionChaosReport report =
          fault::run_session_chaos(cfg, plan);
      std::fputs(report.render().c_str(), stdout);
      return report.ok ? 0 : 1;
    }
    std::vector<fault::SessionChaosCell> cells;
    for (std::uint64_t s = a.seeds.lo; s <= a.seeds.hi; ++s) {
      fault::SessionChaosCell cell{cfg, plan};
      cell.cfg.seed = s;
      cells.push_back(std::move(cell));
    }
    std::vector<fault::SessionChaosReport> reports =
        fault::run_session_chaos_cells(cells, a.jobs);
    std::printf("groups chaos sweep system=%s n=%zu seeds=%llu..%llu\n",
                cfg.system.c_str(), cfg.n,
                static_cast<unsigned long long>(a.seeds.lo),
                static_cast<unsigned long long>(a.seeds.hi));
    std::size_t bad = 0;
    for (const fault::SessionChaosReport& r : reports) {
      if (r.ok) {
        std::printf("seed=%llu ok groups=%zu memberships=%zu dups=%llu",
                    static_cast<unsigned long long>(r.cfg.seed), r.groups,
                    r.memberships,
                    static_cast<unsigned long long>(r.dup_copies));
        if (r.cfg.detect) {
          std::printf(" detected=%zu/%zu detect_p50=%.3g standby=%llu"
                      " full=%llu parked=%llu",
                      r.detected_crashes, r.crash_victims,
                      r.detect_latency.quantile(0.5),
                      static_cast<unsigned long long>(
                          r.counters.reattach_standby),
                      static_cast<unsigned long long>(
                          r.counters.reattach_full),
                      static_cast<unsigned long long>(
                          r.counters.parked_subtrees));
        }
        std::printf("\n");
      } else {
        ++bad;
        std::printf("seed=%llu VIOLATIONS n=%zu\n",
                    static_cast<unsigned long long>(r.cfg.seed),
                    r.violations.size());
      }
    }
    std::printf("summary: %zu/%zu seeds ok\n", reports.size() - bad,
                reports.size());
    return bad == 0 ? 0 : 1;
  }

  auto cell_for = [&](std::uint64_t seed) {
    runtime::SessionCellSpec cell;
    cell.strategy = a.strategy;
    cell.population = recipe(a, seed);
    cell.seed = seed;
    cell.plan = plan;
    cell.fwd.mode = mode;
    cell.stream_packets = a.packets;
    cell.stream_groups = a.stream_groups;
    return cell;
  };

  if (!a.sweep) {
    const runtime::SessionCellResult r = run_session_cell(cell_for(a.seed));
    std::printf("groups system=%s n=%zu bits=%d seed=%llu mode=%s\n",
                a.strategy.c_str(), a.n, a.bits,
                static_cast<unsigned long long>(a.seed), a.mode.c_str());
    std::printf("plan:\n%s", plan.to_string().c_str());
    std::printf(
        "apply: creates=%llu joins_ok=%llu joins_rejected=%llu "
        "leaves=%llu fails=%llu\n",
        static_cast<unsigned long long>(r.apply.creates),
        static_cast<unsigned long long>(r.apply.joins_ok),
        static_cast<unsigned long long>(r.apply.joins_rejected),
        static_cast<unsigned long long>(r.apply.leaves),
        static_cast<unsigned long long>(r.apply.fails));
    const std::string check_str =
        r.check_violations == 0 ? "ok"
                                : std::to_string(r.check_violations);
    std::printf(
        "session: groups=%zu memberships=%zu reparented=%llu "
        "dropped=%llu max_util=%.3f check=%s\n",
        r.groups, r.memberships,
        static_cast<unsigned long long>(r.counters.reparented),
        static_cast<unsigned long long>(r.counters.dropped_members),
        r.max_utilization, check_str.c_str());
    std::printf(
        "stream: groups=%zu goodput=%.2f kbps jain=%.4f p99=%.2f ms "
        "completion=%.2f ms copies=%llu\n",
        r.stats.groups.size(), r.stats.aggregate_goodput_kbps,
        r.stats.jain_fairness, r.stats.p99_latency_ms,
        r.stats.completion_ms,
        static_cast<unsigned long long>(r.stats.copies_sent));
    constexpr std::size_t kMaxLines = 24;
    for (std::size_t i = 0;
         i < r.stats.groups.size() && i < kMaxLines; ++i) {
      const session::GroupRunStats& g = r.stats.groups[i];
      std::printf(
          "  group %llu: receivers=%zu rate=%.2f kbps p99=%.2f ms "
          "pauses=%llu dups=%llu\n",
          static_cast<unsigned long long>(g.group), g.session.receivers,
          g.session.session_rate_kbps, g.p99_latency_ms,
          static_cast<unsigned long long>(g.admission_pauses),
          static_cast<unsigned long long>(g.duplicate_deliveries));
    }
    if (r.stats.groups.size() > kMaxLines) {
      std::printf("  ... %zu more groups\n",
                  r.stats.groups.size() - kMaxLines);
    }
    return r.check_violations == 0 ? 0 : 1;
  }

  std::vector<runtime::SessionCellSpec> cells;
  for (std::uint64_t s = a.seeds.lo; s <= a.seeds.hi; ++s) {
    cells.push_back(cell_for(s));
  }
  const std::vector<runtime::SessionCellResult> results =
      runtime::run_cells(cells, {a.jobs});
  std::printf("groups sweep system=%s n=%zu mode=%s seeds=%llu..%llu\n",
              a.strategy.c_str(), a.n, a.mode.c_str(),
              static_cast<unsigned long long>(a.seeds.lo),
              static_cast<unsigned long long>(a.seeds.hi));
  std::size_t bad = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const runtime::SessionCellResult& r = results[i];
    if (r.check_violations != 0) ++bad;
    std::printf(
        "seed=%llu groups=%zu joined=%llu rejected=%llu util=%.3f "
        "goodput=%.2f jain=%.4f p99=%.2f check=%s\n",
        static_cast<unsigned long long>(a.seeds.lo + i), r.groups,
        static_cast<unsigned long long>(r.apply.joins_ok),
        static_cast<unsigned long long>(r.apply.joins_rejected),
        r.max_utilization, r.stats.aggregate_goodput_kbps,
        r.stats.jain_fairness, r.stats.p99_latency_ms,
        r.check_violations == 0 ? "ok" : "VIOLATIONS");
  }
  std::printf("summary: %zu/%zu seeds ok\n", results.size() - bad,
              results.size());
  return bad == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args a = parse(argc, argv);
  if (!a.out_file.empty() &&
      std::freopen(a.out_file.c_str(), "w", stdout) == nullptr) {
    std::fprintf(stderr, "camsim: cannot open %s\n", a.out_file.c_str());
    return 2;
  }
  if (a.command == "multicast") return cmd_multicast(a);
  if (a.command == "lookup") return cmd_lookup(a);
  if (a.command == "churn") return cmd_churn(a);
  if (a.command == "stream") return cmd_stream(a);
  if (a.command == "async") return cmd_async(a);
  if (a.command == "chaos") return cmd_chaos(a);
  if (a.command == "groups") return cmd_groups(a);
  usage("unknown subcommand '" + a.command + "'");
}
