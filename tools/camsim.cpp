// camsim — command-line driver for the CAM multicast simulator.
//
// Subcommands:
//   camsim multicast  --system=camchord|camkoorde|chord|koorde
//                     [--n=N] [--bits=B] [--cap=LO:HI | --p=KBPS]
//                     [--param=C] [--sources=K] [--seed=S] [--histogram]
//       Runs K multicasts over a converged overlay and prints tree
//       metrics (throughput, path lengths, children, optional histogram).
//
//   camsim lookup     --system=... [--n=N] [--bits=B] [--cap=LO:HI]
//                     [--queries=Q] [--seed=S] [--param=C]
//       Runs Q random lookups and prints hop statistics.
//
//   camsim churn      [--n=N] [--fail=FRAC] [--seed=S]
//       Protocol-mode churn scenario: delivery before/after repair.
//
//   camsim stream     [--n=N] [--p=KBPS] [--packets=K] [--seed=S]
//       Packet-level streaming over a CAM-Chord tree.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "camchord/net.h"
#include "camchord/oracle.h"
#include "experiments/runner.h"
#include "experiments/table.h"
#include "multicast/metrics.h"
#include "stream/streaming.h"
#include "util/rng.h"
#include "workload/churn.h"
#include "workload/population.h"

namespace {

using namespace cam;
using namespace cam::exp;

struct Args {
  std::string command;
  std::string system = "camchord";
  std::size_t n = 10'000;
  int bits = 19;
  std::uint32_t cap_lo = 4, cap_hi = 10;
  double p = 0;  // 0 = use --cap range instead
  std::uint32_t param = 8;
  std::size_t sources = 3;
  std::size_t queries = 200;
  double fail = 0.15;
  std::uint32_t packets = 48;
  std::uint64_t seed = 1;
  bool histogram = false;
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: camsim <multicast|lookup|churn|stream> [options]\n"
               "see the header of tools/camsim.cpp for the option list\n");
  std::exit(2);
}

Args parse(int argc, char** argv) {
  if (argc < 2) usage();
  Args a;
  a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string s = argv[i];
    auto val = [&](const char* prefix) {
      return s.substr(std::strlen(prefix));
    };
    if (s.rfind("--system=", 0) == 0) {
      a.system = val("--system=");
    } else if (s.rfind("--n=", 0) == 0) {
      a.n = std::stoull(val("--n="));
    } else if (s.rfind("--bits=", 0) == 0) {
      a.bits = std::stoi(val("--bits="));
    } else if (s.rfind("--cap=", 0) == 0) {
      std::string v = val("--cap=");
      auto colon = v.find(':');
      if (colon == std::string::npos) usage();
      a.cap_lo = static_cast<std::uint32_t>(std::stoul(v.substr(0, colon)));
      a.cap_hi = static_cast<std::uint32_t>(std::stoul(v.substr(colon + 1)));
    } else if (s.rfind("--p=", 0) == 0) {
      a.p = std::stod(val("--p="));
    } else if (s.rfind("--param=", 0) == 0) {
      a.param = static_cast<std::uint32_t>(std::stoul(val("--param=")));
    } else if (s.rfind("--sources=", 0) == 0) {
      a.sources = std::stoull(val("--sources="));
    } else if (s.rfind("--queries=", 0) == 0) {
      a.queries = std::stoull(val("--queries="));
    } else if (s.rfind("--fail=", 0) == 0) {
      a.fail = std::stod(val("--fail="));
    } else if (s.rfind("--packets=", 0) == 0) {
      a.packets = static_cast<std::uint32_t>(std::stoul(val("--packets=")));
    } else if (s.rfind("--seed=", 0) == 0) {
      a.seed = std::stoull(val("--seed="));
    } else if (s == "--histogram") {
      a.histogram = true;
    } else {
      usage();
    }
  }
  return a;
}

System system_of(const std::string& name) {
  if (name == "camchord") return System::kCamChord;
  if (name == "camkoorde") return System::kCamKoorde;
  if (name == "chord") return System::kChord;
  if (name == "koorde") return System::kKoorde;
  usage();
}

FrozenDirectory population(const Args& a) {
  workload::PopulationSpec spec;
  spec.n = a.n;
  spec.ring_bits = a.bits;
  spec.seed = a.seed;
  if (a.p > 0) {
    return workload::bandwidth_derived_population(spec, a.p, 4).freeze();
  }
  return workload::uniform_capacity_population(spec, a.cap_lo, a.cap_hi)
      .freeze();
}

int cmd_multicast(const Args& a) {
  FrozenDirectory dir = population(a);
  System sys = system_of(a.system);
  AveragedRun r = run_sources(sys, dir, a.sources, a.seed, a.param);
  std::printf("system            %s\n", system_name(sys).c_str());
  std::printf("members           %zu (reached %zu)\n", r.expected, r.reached);
  std::printf("avg children      %.2f (provisioned degree %.2f)\n",
              r.avg_children, r.avg_degree);
  std::printf("throughput        %.1f kbps realized, %.1f kbps provisioned\n",
              r.throughput_kbps, r.provisioned_kbps);
  std::printf("path length       %.2f avg, %.1f max\n", r.avg_path,
              r.max_depth);
  if (a.histogram) {
    std::printf("hops  nodes\n");
    for (std::size_t h = 0; h < r.depth_histogram.size(); ++h) {
      std::printf("%4zu  %llu\n", h,
                  static_cast<unsigned long long>(r.depth_histogram[h]));
    }
  }
  return 0;
}

int cmd_lookup(const Args& a) {
  FrozenDirectory dir = population(a);
  System sys = system_of(a.system);
  Rng rng(a.seed ^ 0x1001);
  double total = 0;
  std::size_t max_hops = 0, failed = 0;
  for (std::size_t q = 0; q < a.queries; ++q) {
    Id from = dir.ids()[rng.next_below(dir.size())];
    Id k = rng.next_below(dir.ring().size());
    LookupResult r = run_lookup(sys, dir, from, k, a.param);
    if (!r.ok) {
      ++failed;
      continue;
    }
    total += static_cast<double>(r.hops());
    max_hops = std::max(max_hops, r.hops());
  }
  std::printf("system    %s\n", system_name(sys).c_str());
  std::printf("queries   %zu (%zu failed)\n", a.queries, failed);
  std::printf("hops      %.2f mean, %zu max\n",
              total / static_cast<double>(a.queries - failed), max_hops);
  return 0;
}

int cmd_churn(const Args& a) {
  RingSpace ring(a.bits);
  Simulator sim;
  ConstantLatency lat(1.0);
  Network net(sim, lat);
  camchord::CamChordNet overlay(ring, net);
  Rng rng(a.seed);
  overlay.bootstrap(rng.next_below(ring.size()),
                    {.capacity = a.cap_hi, .bandwidth_kbps = 700});
  workload::join_random(overlay, a.n - 1, a.cap_lo, a.cap_hi, 400, 1000, rng);
  overlay.converge();
  std::printf("members   %zu converged\n", overlay.size());

  workload::fail_random_fraction(overlay, a.fail, rng);
  auto members = overlay.members_sorted();
  MulticastTree before = overlay.multicast(members.front());
  std::printf("failed    %.0f%%: delivery %.1f%% before repair\n",
              a.fail * 100,
              100.0 * static_cast<double>(before.size()) /
                  static_cast<double>(overlay.size()));
  overlay.converge();
  MulticastTree after = overlay.multicast(members.front());
  std::printf("repaired  delivery %.1f%% after converge\n",
              100.0 * static_cast<double>(after.size()) /
                  static_cast<double>(overlay.size()));
  return 0;
}

int cmd_stream(const Args& a) {
  Args b = a;
  if (b.p == 0) b.p = 100;
  FrozenDirectory dir = population(b);
  auto cap = [&dir](Id x) { return dir.info(x).capacity; };
  auto bw = [&dir](Id x) { return dir.info(x).bandwidth_kbps; };
  MulticastTree tree =
      camchord::multicast(dir.ring(), dir, cap, dir.ids()[0]);
  ConstantLatency lat(10.0);
  StreamConfig cfg;
  cfg.num_packets = b.packets;
  StreamResult r = stream_over_tree(tree, bw, lat, cfg);
  std::printf("receivers        %zu\n", r.receivers);
  std::printf("session rate     %.1f kbps (analytic %.1f)\n",
              r.session_rate_kbps, tree_throughput_kbps(tree, bw));
  std::printf("first packet     %.0f ms to the slowest receiver\n",
              r.max_first_packet_ms);
  std::printf("full stream      %.0f ms\n", r.completion_ms);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args a = parse(argc, argv);
  if (a.command == "multicast") return cmd_multicast(a);
  if (a.command == "lookup") return cmd_lookup(a);
  if (a.command == "churn") return cmd_churn(a);
  if (a.command == "stream") return cmd_stream(a);
  usage();
}
